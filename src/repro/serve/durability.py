"""Durable write-ahead verdict journal for the decode service.

PR 7's serving layer guarantees *in-process* honesty: every admitted
frame gets exactly one terminal verdict as long as the process lives.
This module extends the guarantee across process death.  A
:class:`VerdictJournal` is an append-only, schema-versioned
(:data:`JOURNAL_SCHEMA`) JSONL file that records the three events that
matter for crash recovery:

* ``admit`` -- a frame entered a queue (including its payload, so the
  frame can be *re-decoded* after a crash);
* ``dispatch`` -- a cycle picked frames for decoding (audit trail: a
  crash between ``dispatch`` and ``verdict`` means work was lost
  mid-decode, not merely queued);
* ``verdict`` -- the frame's terminal answer (compact form: status,
  reason, cycle, latency accounting and the ``recovered`` honesty
  flag).

``reject`` and ``checkpoint`` records ride along so a recovering
service can rebuild its full per-tenant accounting without replaying
traffic, and :mod:`repro.serve.replay` can re-render any tenant's
verdict timeline from the journal alone.

Durability mechanics, in the spirit of every write-ahead log:

* records are **CRC-guarded**: each line carries a ``crc`` over its
  canonical JSON encoding, so a torn write (power loss mid-line) or a
  flipped bit is detected rather than parsed into garbage;
* opening a journal for writing **truncates the torn tail**: the scan
  stops at the first unparsable/CRC-failing record and the file is cut
  back to the last durable byte (the classic WAL repair);
* appends are **fsync-batched**: records buffer in memory and hit disk
  (``flush`` + ``os.fsync``) every ``sync_every`` records and at every
  explicit :meth:`VerdictJournal.flush` -- the service flushes once per
  dispatch cycle, so a crash loses at most the current cycle's
  unflushed records, and at-least-once recovery re-decodes those
  frames (see ``docs/SERVING.md``, "Durability & recovery").

Version mismatches are rejected up front: a journal whose ``open``
header carries a different schema tag raises
:class:`JournalVersionError` instead of being half-understood.
"""

from __future__ import annotations

import base64
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import instrument

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalError",
    "JournalScan",
    "JournalVersionError",
    "RECORD_TYPES",
    "VerdictJournal",
    "encode_record",
    "pack_frame",
    "read_journal",
    "scan_journal",
    "unpack_frame",
]

#: Schema tag of the journal format; bump on incompatible changes.
JOURNAL_SCHEMA = "repro.journal/v1"

#: The closed set of record types a v1 journal may contain.
RECORD_TYPES = ("open", "admit", "reject", "dispatch", "verdict", "checkpoint")


class JournalError(RuntimeError):
    """A journal is structurally unusable (bad header, unknown record)."""


class JournalVersionError(JournalError):
    """The journal's schema tag does not match :data:`JOURNAL_SCHEMA`."""


def _canonical(record: dict) -> str:
    """Canonical JSON used for CRC computation (sorted, compact)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def pack_frame(frame: np.ndarray) -> dict:
    """Pack an ndarray frame payload into a compact JSON-safe dict.

    Raw bytes + base64 instead of a nested JSON float list: roughly
    10x faster to encode and ~40% smaller on the wire, which is what
    keeps per-admit journalling within the bench overhead budget.
    """
    arr = np.ascontiguousarray(frame)
    return {
        "b64": base64.b64encode(arr.tobytes()).decode("ascii"),
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
    }


def unpack_frame(packed) -> np.ndarray:
    """Invert :func:`pack_frame`; also accepts legacy nested lists."""
    if isinstance(packed, dict):
        data = base64.b64decode(packed["b64"])
        arr = np.frombuffer(data, dtype=np.dtype(packed["dtype"]))
        return arr.reshape(packed["shape"]).copy()
    return np.asarray(packed, dtype=float)


def encode_record(kind: str, payload: dict) -> str:
    """Encode one journal record as its CRC-stamped JSONL line.

    ``kind`` must be one of :data:`RECORD_TYPES`; ``payload`` must be
    JSON-safe (the service passes everything through
    :func:`repro.instrument.json_safe` first).  The CRC covers the
    canonical encoding of the record *without* the ``crc`` field, so
    any torn or corrupted line fails verification on read.  The ``crc``
    key is spliced onto the already-canonical string rather than
    re-serialising the whole record -- readers re-canonicalise after
    popping ``crc``, so the emitted line only has to be valid JSON.
    """
    if kind not in RECORD_TYPES:
        raise JournalError(
            f"unknown journal record type {kind!r}; expected one of "
            f"{RECORD_TYPES}"
        )
    body = _canonical({"type": kind, **payload})
    crc = zlib.crc32(body.encode("utf-8"))
    return f'{body[:-1]},"crc":{crc}}}'


def _decode_line(line: str) -> dict | None:
    """Parse and CRC-verify one journal line; ``None`` when invalid."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    crc = record.pop("crc")
    if zlib.crc32(_canonical(record).encode("utf-8")) != crc:
        return None
    if record.get("type") not in RECORD_TYPES:
        return None
    return record


@dataclass(frozen=True)
class JournalScan:
    """Result of scanning a journal file.

    Attributes
    ----------
    records:
        The valid records, in file order (the ``open`` header included).
    good_bytes:
        File offset just past the last valid record -- where a writer
        must truncate to repair a torn tail.
    torn:
        Number of trailing lines discarded as torn/corrupt.
    """

    records: tuple
    good_bytes: int
    torn: int


def scan_journal(path: str | Path) -> JournalScan:
    """Scan a journal file, stopping at the first invalid record.

    Implements the WAL repair rule: everything up to the first
    unparsable or CRC-failing line is durable truth; that line and
    everything after it are a torn tail from an interrupted write and
    are discarded (the writer truncates them; readers ignore them).
    Raises :class:`JournalVersionError` when the ``open`` header
    carries a foreign schema tag, and :class:`JournalError` when a
    non-empty journal does not start with an ``open`` header.
    """
    path = Path(path)
    records: list[dict] = []
    good_bytes = 0
    torn = 0
    if not path.exists():
        return JournalScan(records=(), good_bytes=0, torn=0)
    with open(path, "rb") as fh:
        data = fh.read()
    offset = 0
    for raw_line in data.splitlines(keepends=True):
        line = raw_line.decode("utf-8", errors="replace").strip()
        record = _decode_line(line) if line else None
        if record is None or not raw_line.endswith(b"\n"):
            # Torn tail: a partial final line, or a corrupt record --
            # nothing after it can be trusted either.
            torn = max(1, len(data[offset:].splitlines()))
            break
        records.append(record)
        offset += len(raw_line)
        good_bytes = offset
    if records:
        header = records[0]
        if header.get("type") != "open":
            raise JournalError(
                f"{path}: journal does not start with an 'open' header "
                f"(found {header.get('type')!r})"
            )
        schema = header.get("schema")
        if schema != JOURNAL_SCHEMA:
            raise JournalVersionError(
                f"{path}: journal schema {schema!r} does not match this "
                f"reader ({JOURNAL_SCHEMA!r}); refusing to recover from a "
                "foreign format"
            )
    elif good_bytes == 0 and torn:
        raise JournalError(
            f"{path}: no valid records before the torn tail; the journal "
            "header itself is corrupt"
        )
    return JournalScan(records=tuple(records), good_bytes=good_bytes, torn=torn)


def read_journal(path: str | Path) -> list[dict]:
    """Read a journal's valid records (read-only; torn tail ignored).

    The replay/audit CLI (:mod:`repro.serve.replay`) and the recovery
    path both consume this; the file is not modified, so a journal can
    be audited while its service is live.
    """
    return list(scan_journal(path).records)


class VerdictJournal:
    """Append-only, CRC-guarded, fsync-batched JSONL verdict journal.

    Parameters
    ----------
    path:
        Journal file location.  A missing or empty file is initialised
        with the ``open`` schema header; an existing file is scanned,
        its torn tail truncated, and appending resumes after the last
        durable record.
    sync_every:
        Records buffered between automatic ``flush``/``fsync`` batches
        (1 = synchronous append; larger values trade a bounded
        at-least-once replay window for write throughput).
    fsync:
        Whether flushes call ``os.fsync`` (tests on tmpfs may disable
        it; production must not).
    """

    def __init__(
        self,
        path: str | Path,
        sync_every: int = 16,
        fsync: bool = True,
    ):
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.path = Path(path)
        self.sync_every = int(sync_every)
        self.fsync = bool(fsync)
        self._buffer: list[str] = []
        self._records = 0
        self._closed = False
        scan = scan_journal(self.path)
        self._recovered = scan.records
        if scan.torn:
            instrument.incr("journal.torn_records", scan.torn)
            with open(self.path, "ab") as fh:
                fh.truncate(scan.good_bytes)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")
        if not scan.records:
            self.append("open", {"schema": JOURNAL_SCHEMA})
            self.flush()

    @property
    def recovered_records(self) -> tuple:
        """The durable records found when this journal was opened."""
        return self._recovered

    @property
    def pending(self) -> int:
        """Appended records not yet flushed to disk."""
        return len(self._buffer)

    def append(self, kind: str, payload: dict) -> None:
        """Buffer one record; auto-flushes every ``sync_every`` records."""
        if self._closed:
            raise JournalError(f"{self.path}: journal is closed")
        self._buffer.append(encode_record(kind, instrument.json_safe(payload)))
        self._records += 1
        instrument.incr("journal.records")
        if len(self._buffer) >= self.sync_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered records and (by default) fsync them durable."""
        if not self._buffer or self._closed:
            return
        block = "".join(line + "\n" for line in self._buffer)
        self._buffer.clear()
        self._fh.write(block.encode("utf-8"))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        instrument.incr("journal.flushes")

    def compact(self, checkpoint_payload: dict) -> None:
        """Atomically rewrite the journal as header + one checkpoint.

        The checkpoint must carry the full recoverable state (the
        service's :meth:`~repro.serve.service.DecodeService.checkpoint`
        builds it); everything before it becomes redundant, so the file
        is rewritten as ``open`` + ``checkpoint`` via a temp file and
        ``os.replace`` -- a crash mid-compaction leaves the old journal
        intact.
        """
        self.flush()
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp, "wb") as fh:
            fh.write(
                (encode_record("open", {"schema": JOURNAL_SCHEMA}) + "\n")
                .encode("utf-8")
            )
            fh.write(
                (
                    encode_record(
                        "checkpoint", instrument.json_safe(checkpoint_payload)
                    )
                    + "\n"
                ).encode("utf-8")
            )
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")
        instrument.incr("journal.compactions")

    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._fh.close()

    def __enter__(self) -> "VerdictJournal":
        """Context-manager entry: the journal itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: flush + close."""
        self.close()
