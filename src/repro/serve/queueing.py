"""Bounded frame queues: deadlines, staleness and priority-aware shedding.

The second robustness layer of the decode service.  Frames that pass
admission wait here as :class:`PendingFrame` records in per-stream
bounded FIFO queues (:class:`StreamQueue`); the service's dispatch loop
then uses the pure helpers in this module to decide, deterministically,
what to decode and what to shed:

* :meth:`StreamQueue.push` refuses frames beyond ``limit`` -- the hard
  backpressure bound that keeps one stream's backlog from consuming
  unbounded memory;
* :meth:`StreamQueue.expire` removes frames whose deadline has already
  passed (they would miss it even if decoded immediately -- decoding
  them would *rot* a decode slot, per the service's deadline contract);
* :func:`select_for_dispatch` picks the next decode cycle's frames
  strictly by (priority desc, submission order) across all streams;
* :func:`shed_overload` drops the lowest-priority, stalest queued
  frames first when the total backlog exceeds the sustained-overload
  watermark -- never silently: every shed frame is returned so the
  service can issue its terminal verdict.

None of these helpers reads a clock or an RNG; they are pure functions
of the queue state and the ``now`` passed in, which is what makes the
overload acceptance test's shed/decode split exactly reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

__all__ = [
    "PendingFrame",
    "StreamQueue",
    "select_for_dispatch",
    "shed_overload",
]


@dataclass
class PendingFrame:
    """One admitted-but-not-yet-decoded frame.

    Attributes
    ----------
    seq:
        Service-wide submission sequence number (total order; doubles
        as the FIFO/staleness key -- smaller is staler).
    stream:
        Stream name the frame belongs to.
    tenant:
        Tenant that submitted it (accounting/shedding key).
    priority:
        Effective priority (stream override or tenant default); higher
        decodes first and sheds last.
    frame:
        The frame to decode (already validated at admission).
    submitted_at:
        Clock reading at admission (queue-latency accounting).
    deadline:
        Absolute clock time after which the decode is worthless;
        ``None`` means no deadline.
    recovered:
        ``True`` when this frame was re-enqueued by crash recovery
        (:meth:`repro.serve.service.DecodeService.recover`) rather than
        submitted live; its eventual verdict carries the flag through
        as the at-least-once honesty marker.
    """

    seq: int
    stream: str
    tenant: str
    priority: int
    frame: np.ndarray
    submitted_at: float
    deadline: float | None = None
    recovered: bool = False

    def expired(self, now: float) -> bool:
        """Whether the deadline has passed as of ``now``."""
        return self.deadline is not None and now >= self.deadline


@dataclass
class StreamQueue:
    """Bounded FIFO of :class:`PendingFrame` for one stream.

    ``limit`` is the hard backpressure bound; ``high_water`` (defaults
    to half the limit) is where the service starts signalling
    ``"queued"`` instead of ``"accepted"`` on tickets, telling polite
    clients to slow down *before* they hit rejections.
    """

    limit: int
    high_water: int | None = None
    _frames: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {self.limit}")
        if self.high_water is None:
            self.high_water = max(1, self.limit // 2)
        if not 1 <= self.high_water <= self.limit:
            raise ValueError(
                f"high_water must be in [1, limit], got {self.high_water} "
                f"(limit {self.limit})"
            )

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def depth(self) -> int:
        """Frames currently queued."""
        return len(self._frames)

    @property
    def congested(self) -> bool:
        """Whether the backlog is at or past the high-water mark."""
        return len(self._frames) >= self.high_water

    def push(self, pending: PendingFrame, force: bool = False) -> bool:
        """Enqueue; ``False`` (frame not queued) when at the limit.

        ``force=True`` bypasses the limit -- used only by crash
        recovery, which must re-enqueue every admitted-but-undecided
        frame even if the replayed backlog momentarily exceeds the
        configured bound (the overload shedder reins it back in on the
        next cycle, with honest verdicts).
        """
        if not force and len(self._frames) >= self.limit:
            return False
        self._frames.append(pending)
        return True

    def expire(self, now: float) -> list[PendingFrame]:
        """Remove and return every queued frame whose deadline passed."""
        if not self._frames:
            return []
        expired = [p for p in self._frames if p.expired(now)]
        if expired:
            self._frames = deque(
                p for p in self._frames if not p.expired(now)
            )
        return expired

    def peek_all(self) -> tuple[PendingFrame, ...]:
        """The queued frames in FIFO order (non-destructive)."""
        return tuple(self._frames)

    def remove(self, frames: Iterable[PendingFrame]) -> None:
        """Drop specific frames (identity match) from the queue."""
        doomed = {id(p) for p in frames}
        if doomed:
            self._frames = deque(
                p for p in self._frames if id(p) not in doomed
            )


def select_for_dispatch(
    queues: dict[str, StreamQueue], budget: int
) -> list[PendingFrame]:
    """Pick up to ``budget`` frames to decode this cycle.

    Global order is (priority descending, ``seq`` ascending): the
    highest-priority work decodes first, ties broken by submission
    order, and each stream's frames stay in FIFO order (``seq`` is
    monotone within a stream).  The selected frames are removed from
    their queues.
    """
    if budget < 1:
        return []
    candidates: list[PendingFrame] = []
    for queue in queues.values():
        candidates.extend(queue.peek_all())
    candidates.sort(key=lambda p: (-p.priority, p.seq))
    selected = candidates[:budget]
    by_stream: dict[str, list[PendingFrame]] = {}
    for pending in selected:
        by_stream.setdefault(pending.stream, []).append(pending)
    for stream, frames in by_stream.items():
        queues[stream].remove(frames)
    return selected


def shed_overload(
    queues: dict[str, StreamQueue], backlog_limit: int
) -> list[PendingFrame]:
    """Shed queued frames down to ``backlog_limit`` total backlog.

    The sustained-overload valve: when the post-dispatch backlog still
    exceeds ``backlog_limit``, the *lowest-priority, stalest* frames
    (priority ascending, ``seq`` ascending) are removed and returned so
    the service can answer each with an ``"overload_shed"`` verdict --
    high-priority tenants keep their queue slots, low-priority backlog
    absorbs the loss, and nothing is dropped silently.
    """
    if backlog_limit < 0:
        raise ValueError(f"backlog_limit must be >= 0, got {backlog_limit}")
    backlog: list[PendingFrame] = []
    for queue in queues.values():
        backlog.extend(queue.peek_all())
    excess = len(backlog) - backlog_limit
    if excess <= 0:
        return []
    backlog.sort(key=lambda p: (p.priority, p.seq))
    doomed = backlog[:excess]
    by_stream: dict[str, list[PendingFrame]] = {}
    for pending in doomed:
        by_stream.setdefault(pending.stream, []).append(pending)
    for stream, frames in by_stream.items():
        queues[stream].remove(frames)
    return doomed
