"""Replay/audit a verdict journal: re-render tenant timelines offline.

The journal (:mod:`repro.serve.durability`) is the service's durable
source of truth; this module turns it back into the per-tenant
accounting and verdict timeline a tenant would ask for after the fact
-- **from the journal alone**, with no service state.  The report is a
pure, deterministic function of the journal bytes, so two replays of
the same file are bit-identical (the crash-recovery acceptance test
pins this), and an auditor can verify a tenant's claim ("frame 41 was
shed") without ever having run the service.

Command line::

    python -m repro.serve.replay journal.jsonl            # full report
    python -m repro.serve.replay journal.jsonl --tenant icu
    python -m repro.serve.replay journal.jsonl --output report.json

The report schema (``repro.journal/v1`` riding on the journal's own
version tag):

* ``tenants`` -- per-tenant ``submitted`` / ``admitted`` / ``rejected``
  (by reason) / ``verdicts`` (by status) counts plus the count of
  ``recovered`` verdicts (frames replayed after a crash, the
  at-least-once honesty flag);
* ``timeline`` -- every verdict in sequence order: seq, stream,
  status, reason, cycle and the ``recovered`` flag;
* ``outstanding`` -- admitted seqs with **no** terminal verdict (after
  a clean drain this must be empty; non-empty means the journal
  captured a crash whose recovery has not run yet);
* ``checkpoints`` / ``dispatches`` -- audit counters.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .durability import JOURNAL_SCHEMA, read_journal

__all__ = ["main", "render_report", "replay_report"]


def _tenant_bucket(tenants: dict, name: str) -> dict:
    """Get-or-create one tenant's accounting bucket."""
    if name not in tenants:
        tenants[name] = {
            "submitted": 0,
            "admitted": 0,
            "rejected": {},
            "verdicts": {},
            "recovered": 0,
        }
    return tenants[name]


def replay_report(path: str | Path, tenant: str | None = None) -> dict:
    """Build the audit report for ``path`` (optionally one tenant only).

    Re-application is idempotent by ``seq``: duplicated ``admit`` or
    ``verdict`` records (a journal replayed into itself, or an
    at-least-once recovery that re-journals) count once, so the report
    is a function of the *set* of events, not of how many times the
    log repeats them.
    """
    records = read_journal(path)
    tenants: dict[str, dict] = {}
    timeline: list[dict] = []
    admits: dict[int, dict] = {}
    verdict_seqs: set[int] = set()
    rejected_seqs: set[int] = set()
    dispatches = 0
    checkpoints = 0
    for record in records:
        kind = record["type"]
        if kind == "admit":
            seq = int(record["seq"])
            if seq in admits:
                continue
            admits[seq] = record
            bucket = _tenant_bucket(tenants, record["tenant"])
            bucket["submitted"] += 1
            bucket["admitted"] += 1
        elif kind == "reject":
            seq = int(record["seq"])
            if seq in rejected_seqs:
                continue
            rejected_seqs.add(seq)
            bucket = _tenant_bucket(tenants, record["tenant"])
            bucket["submitted"] += 1
            reason = record["reason"]
            bucket["rejected"][reason] = bucket["rejected"].get(reason, 0) + 1
        elif kind == "verdict":
            seq = int(record["seq"])
            if seq in verdict_seqs:
                continue
            verdict_seqs.add(seq)
            bucket = _tenant_bucket(tenants, record["tenant"])
            status = record["status"]
            bucket["verdicts"][status] = bucket["verdicts"].get(status, 0) + 1
            if record.get("recovered"):
                bucket["recovered"] += 1
            timeline.append(
                {
                    "seq": seq,
                    "stream": record["stream"],
                    "tenant": record["tenant"],
                    "status": status,
                    "reason": record.get("reason"),
                    "cycle": record.get("cycle"),
                    "recovered": bool(record.get("recovered", False)),
                    "deadline_missed": bool(
                        record.get("deadline_missed", False)
                    ),
                }
            )
        elif kind == "dispatch":
            dispatches += 1
        elif kind == "checkpoint":
            checkpoints += 1
            # A checkpoint's accounts supersede the replayed prefix
            # (compaction drops the prefix entirely); reseed from it.
            tenants = {
                name: {
                    "submitted": dict(acct).get("submitted", 0),
                    "admitted": dict(acct).get("admitted", 0),
                    "rejected": dict(dict(acct).get("rejected", {})),
                    "verdicts": dict(dict(acct).get("verdicts", {})),
                    "recovered": dict(acct).get("recovered", 0),
                }
                for name, acct in record.get("accounts", {}).items()
            }
            admits = {
                int(entry["seq"]): entry
                for entry in record.get("pending", [])
            }
            verdict_seqs = set()
            rejected_seqs = set()
            timeline = []
    timeline.sort(key=lambda v: v["seq"])
    outstanding = sorted(seq for seq in admits if seq not in verdict_seqs)
    if tenant is not None:
        timeline = [v for v in timeline if v["tenant"] == tenant]
        outstanding = [
            seq
            for seq in outstanding
            if admits[seq].get("tenant") == tenant
        ]
        tenants = {
            name: acct for name, acct in tenants.items() if name == tenant
        }
    return {
        "schema": JOURNAL_SCHEMA,
        "journal": str(path),
        "tenant_filter": tenant,
        "tenants": {name: tenants[name] for name in sorted(tenants)},
        "timeline": timeline,
        "outstanding": outstanding,
        "dispatches": dispatches,
        "checkpoints": checkpoints,
    }


def render_report(report: dict) -> str:
    """Serialise a replay report deterministically (bit-identical)."""
    return json.dumps(report, indent=2, sort_keys=True)


def main(argv=None) -> int:
    """CLI entry point: ``python -m repro.serve.replay <journal>``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.replay",
        description="Re-render a tenant's verdict timeline from a "
        "durable verdict journal.",
    )
    parser.add_argument("journal", help="path to the journal JSONL file")
    parser.add_argument(
        "--tenant",
        default=None,
        help="restrict the report to one tenant's timeline",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the JSON report here instead of stdout",
    )
    args = parser.parse_args(argv)
    report = replay_report(args.journal, tenant=args.tenant)
    rendered = render_report(report)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(rendered + "\n")
    else:
        try:
            print(rendered)
        except BrokenPipeError:
            # Downstream closed early (e.g. piped into head); the
            # render already succeeded, so exit quietly.
            sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
