"""The multi-tenant decode service core: admit, queue, shed, decode, answer.

:class:`DecodeService` is the deterministic heart of :mod:`repro.serve`
-- a single-threaded state machine that the asyncio front end
(:mod:`repro.serve.async_service`) drives in production and that tests
drive directly with a :class:`~repro.serve.clock.VirtualClock`.  Its
contract, enforced by the overload acceptance tests:

**every submitted frame gets exactly one terminal answer.**  Either the
submission is *rejected* on the spot (ticket status ``"rejected"`` with
a reason from :data:`~repro.serve.admission.REJECTION_REASONS`), or it
is admitted and later receives exactly one :class:`FrameVerdict` --
``decoded``, ``degraded``, ``fallback``, ``failed`` or ``shed`` (with a
reason).  Nothing is ever dropped silently, and an accepted frame is
never left unanswered.

One call to :meth:`DecodeService.run_cycle` performs one dispatch
cycle:

1. expire queued frames whose deadline has passed (terminal
   ``shed``/``deadline_expired`` verdicts -- expired work is cancelled,
   not decoded into a worthless result);
2. select up to ``cycle_budget`` frames by (priority desc, submission
   order) across all streams;
3. shed the lowest-priority, stalest backlog beyond ``backlog_limit``
   (terminal ``shed``/``overload_shed`` verdicts);
4. coalesce the selected frames into per-stream
   :meth:`~repro.core.engine.DecodeEngine.decode_batch` calls on the
   shared executor (supervised streams decode frame-at-a-time through
   their :class:`~repro.resilience.runtime.ResilientDecoder`);
5. issue verdicts, feed each stream's
   :class:`~repro.serve.supervisor.StreamSupervisor`, and collect any
   alerts the supervisors raised.

Two optional robustness layers extend the in-process contract:

* **durability** -- attach a
  :class:`~repro.serve.durability.VerdictJournal` and every admission,
  rejection, dispatch and verdict is journalled (flushed once per
  cycle); after a crash, :meth:`DecodeService.recover` rebuilds the
  accounting and re-enqueues every admitted-but-undecided frame with a
  ``recovered=True`` honesty flag (at-least-once), and
  :mod:`repro.serve.replay` audits the journal offline;
* **worker supervision** -- ``supervise_workers=True`` wraps the decode
  executor in a :class:`~repro.core.executor.SupervisedExecutor`, so a
  crashed or hung decode worker trips per-worker backoff + retry on a
  surviving worker instead of stalling the pump, surfacing
  ``worker_lost`` :class:`~repro.serve.supervisor.AlertEvent`\\ s and
  ``executor.worker_lost`` counters.

All of it is instrumented under ``serve.*`` so the profiling CLI and
the bench trend job can watch the service like any other subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import instrument
from ..core.engine import DecodeContext
from ..core.executor import Executor, SupervisedExecutor, resolve_executor
from ..resilience.health import FrameGuard
from ..resilience.runtime import DecodeOutcome, ResilientDecoder
from .admission import REJECTION_REASONS, AdmissionController, Quota
from .clock import Clock, MonotonicClock
from .coalescer import Coalescer, decode_pending
from .durability import (
    JournalError,
    VerdictJournal,
    pack_frame,
    unpack_frame,
)
from .queueing import (
    PendingFrame,
    StreamQueue,
    select_for_dispatch,
    shed_overload,
)
from .supervisor import AlertEvent, StreamSupervisor

__all__ = [
    "DecodeService",
    "DrainExhausted",
    "DrainResult",
    "FrameVerdict",
    "StreamConfig",
    "SubmitTicket",
    "TenantConfig",
]

#: Schema tag stamped on every ticket, verdict and service report.
SERVE_SCHEMA = "repro.serve/v1"

#: Verdict statuses that mean "a real reconstruction was delivered".
SUCCESS_STATUSES = ("decoded", "degraded")

_OUTCOME_TO_VERDICT = {
    "ok": "decoded",
    "degraded": "degraded",
    "fallback": "fallback",
    "failed": "failed",
}


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's registration: identity, priority and rate quota.

    Parameters
    ----------
    name:
        Tenant identifier (accounting key).
    priority:
        Default priority of the tenant's streams; higher decodes first
        and sheds last.
    quota:
        Tenant-wide admission :class:`~repro.serve.admission.Quota`
        shared by all the tenant's streams (``None`` = unlimited).
    """

    name: str
    priority: int = 0
    quota: Quota | None = None


@dataclass(frozen=True)
class StreamConfig:
    """One stream's registration: its frozen plan plus service knobs.

    Parameters
    ----------
    name:
        Stream identifier (unique service-wide).
    tenant:
        Owning tenant (must be registered first).
    plan:
        The frozen :class:`~repro.core.engine.DecodeContext` every
        frame of this stream decodes under.
    policy:
        Optional :class:`~repro.resilience.policies.ResiliencePolicy`;
        when set the stream decodes through a dedicated
        :class:`~repro.resilience.runtime.ResilientDecoder` whose
        breaker/guard state persists across frames.
    adaptive:
        Optional :class:`~repro.resilience.adaptive.AdaptivePolicy`
        feedback controller plugged into the stream's decoder.
    quota:
        Per-stream admission quota (``None`` = tenant quota only).
    priority:
        Override of the tenant's priority for this stream.
    queue_limit:
        Bounded-queue capacity (the hard backpressure limit).
    seed:
        Seed of the stream's private RNG (``Phi_M`` draws and noise);
        streams are RNG-isolated so one tenant's traffic can never
        perturb another's reconstructions.
    shared_phi:
        Reuse one sampling pattern per coalesced batch (the
        streaming-hardware regime; enables the multi-RHS fast path).
    deadline_s:
        Default per-frame deadline, as seconds after submission;
        ``None`` = no deadline unless ``submit`` passes one.
    """

    name: str
    tenant: str
    plan: DecodeContext
    policy: object | None = None
    adaptive: object | None = None
    quota: Quota | None = None
    priority: int | None = None
    queue_limit: int = 32
    seed: int = 0
    shared_phi: bool = False
    deadline_s: float | None = None


@dataclass(frozen=True)
class SubmitTicket:
    """The immediate, machine-readable answer to one ``submit`` call.

    ``status`` is the backpressure signal:

    * ``"accepted"`` -- queued with headroom;
    * ``"queued"``   -- queued, but the stream is past its high-water
      mark (polite clients should slow down);
    * ``"rejected"`` -- not queued; ``reason`` names why (one of
      :data:`~repro.serve.admission.REJECTION_REASONS`) and no verdict
      will follow.
    """

    seq: int
    stream: str
    tenant: str
    status: str
    reason: str | None = None
    queue_depth: int = 0
    submitted_at: float = 0.0

    @property
    def admitted(self) -> bool:
        """Whether the frame entered the queue (a verdict will follow)."""
        return self.status in ("accepted", "queued")

    def to_dict(self) -> dict:
        """JSON-safe ticket (schema-tagged)."""
        return instrument.json_safe(
            {
                "schema": SERVE_SCHEMA,
                "seq": self.seq,
                "stream": self.stream,
                "tenant": self.tenant,
                "status": self.status,
                "reason": self.reason,
                "queue_depth": self.queue_depth,
                "submitted_at": self.submitted_at,
            }
        )


@dataclass
class FrameVerdict:
    """The terminal answer for one admitted frame.

    Attributes
    ----------
    seq, stream, tenant, priority:
        Identity copied from the :class:`~repro.serve.queueing.PendingFrame`.
    status:
        ``"decoded"`` | ``"degraded"`` | ``"fallback"`` | ``"failed"``
        | ``"shed"``.
    reason:
        Shed reason (``"deadline_expired"`` / ``"overload_shed"``),
        ``None`` for decoded frames.
    outcome:
        The full :class:`~repro.resilience.runtime.DecodeOutcome` for
        decoded/degraded/fallback/failed frames (``None`` for sheds).
    queue_latency_s:
        Clock time the frame spent between admission and dispatch (or
        shedding).
    decode_s:
        Clock time the decode itself took (0 for sheds).
    deadline_missed:
        ``True`` when the frame had a deadline and its terminal answer
        landed after it (always ``False`` for ``decoded`` frames under
        the service contract: expired frames are cancelled, not
        decoded).
    cycle:
        Dispatch cycle index that produced the verdict.
    recovered:
        ``True`` when the frame was replayed by crash recovery rather
        than decoded on its first admission -- the at-least-once
        honesty flag (a caller may therefore see the same ``seq``
        answered in two different process lifetimes; the flagged one is
        the replay).
    """

    seq: int
    stream: str
    tenant: str
    priority: int
    status: str
    reason: str | None = None
    outcome: DecodeOutcome | None = None
    queue_latency_s: float = 0.0
    decode_s: float = 0.0
    deadline_missed: bool = False
    cycle: int = -1
    recovered: bool = False

    @property
    def delivered_frame(self) -> np.ndarray | None:
        """The reconstruction, when one exists (``None`` for sheds)."""
        return None if self.outcome is None else self.outcome.frame

    def to_dict(self) -> dict:
        """JSON-safe verdict: ``DecodeOutcome.to_dict()`` + service fields.

        This is the service's response/log schema: the existing outcome
        schema rides along unchanged under ``"outcome"``, with the
        serving-layer accounting (queue latency, shed reason, deadline
        verdict, tenant identity) beside it.
        """
        return instrument.json_safe(
            {
                "schema": SERVE_SCHEMA,
                "seq": self.seq,
                "stream": self.stream,
                "tenant": self.tenant,
                "priority": self.priority,
                "status": self.status,
                "reason": self.reason,
                "queue_latency_s": self.queue_latency_s,
                "decode_s": self.decode_s,
                "deadline_missed": self.deadline_missed,
                "cycle": self.cycle,
                "recovered": self.recovered,
                "outcome": None
                if self.outcome is None
                else self.outcome.to_dict(),
            }
        )


@dataclass
class _StreamState:
    """Internal per-stream runtime state (plan, queue, decoder, health)."""

    config: StreamConfig
    priority: int
    queue: StreamQueue
    rng: np.random.Generator
    supervisor: StreamSupervisor
    decoder: ResilientDecoder | None = None


@dataclass
class _TenantAccount:
    """Per-tenant accounting the service report exposes."""

    submitted: int = 0
    admitted: int = 0
    rejected: dict = field(default_factory=dict)
    verdicts: dict = field(default_factory=dict)
    recovered: int = 0

    def record_rejection(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def record_verdict(self, status: str, recovered: bool = False) -> None:
        self.verdicts[status] = self.verdicts.get(status, 0) + 1
        if recovered:
            self.recovered += 1


class DrainExhausted(RuntimeError):
    """``drain`` ran out of cycles with backlog remaining.

    Carries the verdicts issued so far in ``.verdicts`` and the
    leftover backlog size in ``.backlog`` so a caller that catches the
    exhaustion still gets the partial answer instead of losing it.
    """

    def __init__(self, message: str, verdicts: list, backlog: int):
        super().__init__(message)
        self.verdicts = verdicts
        self.backlog = backlog


class DrainResult(list):
    """The verdict list a ``drain`` call returns, plus its honesty bit.

    Behaves exactly like the plain ``list`` of
    :class:`FrameVerdict` older callers expect, with one extra
    attribute: ``drained`` is ``True`` when the backlog actually hit
    zero and ``False`` when ``max_cycles`` ran out first (only
    reachable with ``on_exhausted="return"``).
    """

    def __init__(self, verdicts=(), drained: bool = True):
        super().__init__(verdicts)
        self.drained = bool(drained)


class DecodeService:
    """Multi-tenant frame-decode service (deterministic core).

    Parameters
    ----------
    executor:
        Shared decode executor for plain-stream batches -- anything
        :func:`~repro.core.executor.resolve_executor` accepts.
        ``None`` solves in-process (and is what the deterministic
        tests use).
    clock:
        Time source; defaults to wall time
        (:class:`~repro.serve.clock.MonotonicClock`).  Tests inject a
        :class:`~repro.serve.clock.VirtualClock`.
    cycle_budget:
        Maximum frames decoded per :meth:`run_cycle` -- the service's
        capacity model.
    max_batch:
        Largest single ``decode_batch`` call (see
        :class:`~repro.serve.coalescer.Coalescer`).
    backlog_limit:
        Post-dispatch backlog watermark for sustained-overload
        shedding; ``None`` disables global shedding (per-stream queue
        limits still bound memory).  Defaults to ``2 * cycle_budget``.
    on_verdict:
        Optional callback invoked with every :class:`FrameVerdict` as
        it is issued (the asyncio front end resolves futures with it).
    journal:
        Optional :class:`~repro.serve.durability.VerdictJournal` (or a
        path, opened as one) recording every admit/reject/dispatch/
        verdict; flushed durable once per cycle.  Enables
        :meth:`recover` and the :mod:`repro.serve.replay` audit CLI.
    supervise_workers:
        Wrap the decode executor in a
        :class:`~repro.core.executor.SupervisedExecutor` so crashed or
        hung workers are detected, counted and retried on a surviving
        worker instead of stalling the pump.
    worker_timeout_s:
        Per-task wall-clock budget for supervised dispatch (``None`` =
        no timeout; crash detection still applies).
    worker_retries:
        Retry rounds for lost workers under supervision.
    """

    def __init__(
        self,
        executor: Executor | str | int | None = None,
        clock: Clock | None = None,
        cycle_budget: int = 8,
        max_batch: int = 8,
        backlog_limit: int | None = None,
        on_verdict: Callable[[FrameVerdict], None] | None = None,
        journal: VerdictJournal | str | None = None,
        supervise_workers: bool = False,
        worker_timeout_s: float | None = None,
        worker_retries: int = 2,
    ):
        if cycle_budget < 1:
            raise ValueError(f"cycle_budget must be >= 1, got {cycle_budget}")
        self.clock = clock if clock is not None else MonotonicClock()
        self.executor = resolve_executor(executor)
        if supervise_workers and not isinstance(
            self.executor, SupervisedExecutor
        ):
            self.executor = SupervisedExecutor(
                self.executor,
                timeout_s=worker_timeout_s,
                max_retries=worker_retries,
            )
        if journal is not None and not isinstance(journal, VerdictJournal):
            journal = VerdictJournal(journal)
        self.journal = journal
        self.cycle_budget = int(cycle_budget)
        self.backlog_limit = (
            2 * self.cycle_budget if backlog_limit is None else backlog_limit
        )
        if self.backlog_limit < 0:
            raise ValueError(
                f"backlog_limit must be >= 0, got {self.backlog_limit}"
            )
        self.on_verdict = on_verdict
        self._admission = AdmissionController(self.clock)
        self._coalescer = Coalescer(max_batch=max_batch)
        self._tenants: dict[str, TenantConfig] = {}
        self._accounts: dict[str, _TenantAccount] = {}
        self._streams: dict[str, _StreamState] = {}
        self._seq = 0
        self._cycle = 0
        self._stopped = False
        self._alerts: list[AlertEvent] = []
        self._verdicts: list[FrameVerdict] = []

    # -- registration -------------------------------------------------------
    def register_tenant(self, config: TenantConfig) -> None:
        """Register a tenant (idempotent re-registration replaces quotas)."""
        self._tenants[config.name] = config
        self._accounts.setdefault(config.name, _TenantAccount())
        self._admission.register_tenant(config.name, config.quota)

    def register_stream(self, config: StreamConfig) -> None:
        """Register a stream under an already-registered tenant.

        Builds the stream's runtime state: bounded queue, private RNG,
        health supervisor, and -- when a policy or adaptive controller
        is configured -- a dedicated supervised decoder whose breaker
        and last-good-frame guard persist across the stream's frames.
        """
        if config.tenant not in self._tenants:
            raise KeyError(
                f"unknown tenant {config.tenant!r}; register_tenant first"
            )
        if config.name in self._streams:
            raise ValueError(f"stream {config.name!r} already registered")
        tenant = self._tenants[config.tenant]
        decoder = None
        if config.policy is not None or config.adaptive is not None:
            base = (
                config.policy
                if config.policy is not None
                else config.adaptive.base
            )
            decoder = ResilientDecoder(
                policy=base, guard=FrameGuard(), adaptive=config.adaptive
            )
        self._streams[config.name] = _StreamState(
            config=config,
            priority=(
                tenant.priority if config.priority is None
                else config.priority
            ),
            queue=StreamQueue(limit=config.queue_limit),
            rng=np.random.default_rng(config.seed),
            supervisor=StreamSupervisor(
                stream=config.name, tenant=config.tenant
            ),
            decoder=decoder,
        )
        self._admission.register_stream(config.name, config.quota)
        instrument.set_gauge("serve.streams", len(self._streams))

    # -- submission (admission control) -------------------------------------
    def submit(
        self,
        stream: str,
        frame: np.ndarray,
        deadline_s: float | None = None,
    ) -> SubmitTicket:
        """Offer one frame; returns the admission ticket immediately.

        ``deadline_s`` is relative to now (falling back to the stream's
        configured default).  The ticket is the explicit backpressure
        signal: ``accepted`` / ``queued`` (verdict will follow) or
        ``rejected`` with a machine-readable reason (terminal -- no
        verdict follows).  Unknown streams raise ``KeyError``: that is
        a caller bug, not an operational condition.
        """
        state = self._streams.get(stream)
        if state is None:
            raise KeyError(f"unknown stream {stream!r}")
        now = self.clock.now()
        self._seq += 1
        seq = self._seq
        account = self._accounts[state.config.tenant]
        account.submitted += 1
        instrument.incr("serve.submitted")
        if self._stopped:
            return self._reject(state, account, seq, now, "service_stopped")
        frame = np.asarray(frame, dtype=float)
        if frame.shape != state.config.plan.shape or not np.all(
            np.isfinite(frame)
        ):
            return self._reject(state, account, seq, now, "invalid_frame")
        if deadline_s is None:
            deadline_s = state.config.deadline_s
        deadline = None if deadline_s is None else now + float(deadline_s)
        if deadline is not None and deadline <= now:
            return self._reject(
                state, account, seq, now, "deadline_unsatisfiable"
            )
        if not state.supervisor.admit():
            self._collect_alerts(state)
            return self._reject(state, account, seq, now, "breaker_open")
        self._collect_alerts(state)
        reason = self._admission.admit(state.config.tenant, stream)
        if reason is not None:
            return self._reject(state, account, seq, now, reason)
        pending = PendingFrame(
            seq=seq,
            stream=stream,
            tenant=state.config.tenant,
            priority=state.priority,
            frame=frame,
            submitted_at=now,
            deadline=deadline,
        )
        if not state.queue.push(pending):
            return self._reject(state, account, seq, now, "queue_full")
        account.admitted += 1
        if self.journal is not None:
            # The admit record carries the frame payload so recovery
            # can re-decode it from the journal alone.
            self.journal.append(
                "admit",
                {
                    "seq": seq,
                    "stream": stream,
                    "tenant": state.config.tenant,
                    "priority": state.priority,
                    "submitted_at": now,
                    "deadline": deadline,
                    "frame": pack_frame(frame),
                },
            )
        instrument.incr("serve.admitted")
        instrument.set_gauge(f"serve.queue_depth.{stream}", state.queue.depth)
        status = "queued" if state.queue.congested else "accepted"
        return SubmitTicket(
            seq=seq,
            stream=stream,
            tenant=state.config.tenant,
            status=status,
            queue_depth=state.queue.depth,
            submitted_at=now,
        )

    def _reject(
        self,
        state: _StreamState,
        account: _TenantAccount,
        seq: int,
        now: float,
        reason: str,
    ) -> SubmitTicket:
        assert reason in REJECTION_REASONS, reason
        account.record_rejection(reason)
        if self.journal is not None:
            self.journal.append(
                "reject",
                {
                    "seq": seq,
                    "stream": state.config.name,
                    "tenant": state.config.tenant,
                    "reason": reason,
                    "submitted_at": now,
                },
            )
        instrument.incr("serve.rejected")
        instrument.incr(f"serve.rejected.{reason}")
        return SubmitTicket(
            seq=seq,
            stream=state.config.name,
            tenant=state.config.tenant,
            status="rejected",
            reason=reason,
            queue_depth=state.queue.depth,
            submitted_at=now,
        )

    # -- the dispatch cycle -------------------------------------------------
    def run_cycle(self) -> list[FrameVerdict]:
        """Run one dispatch cycle; returns the verdicts it produced."""
        self._cycle += 1
        now = self.clock.now()
        verdicts: list[FrameVerdict] = []
        queues = {name: s.queue for name, s in self._streams.items()}
        with instrument.span("serve.cycle", cycle=self._cycle):
            instrument.incr("serve.cycles")
            # 1. Cancel queued frames whose deadline already passed.
            for state in self._streams.values():
                for pending in state.queue.expire(now):
                    verdicts.append(
                        self._shed_verdict(pending, now, "deadline_expired")
                    )
            # 2. Priority-ordered dispatch under the cycle budget.
            dispatched = select_for_dispatch(queues, self.cycle_budget)
            if self.journal is not None and dispatched:
                self.journal.append(
                    "dispatch",
                    {
                        "cycle": self._cycle,
                        "seqs": [p.seq for p in dispatched],
                    },
                )
            # 3. Sustained-overload shedding of the remaining backlog.
            for pending in shed_overload(queues, self.backlog_limit):
                verdicts.append(
                    self._shed_verdict(pending, now, "overload_shed")
                )
            # 4. Coalesced decode of the dispatched frames.
            for batch in self._coalescer.coalesce(dispatched):
                state = self._streams[batch.stream]
                start = self.clock.now()
                outcomes = decode_pending(
                    batch,
                    state.config.plan,
                    state.rng,
                    decoder=state.decoder,
                    executor=self.executor,
                    shared_phi=state.config.shared_phi,
                )
                decode_s = max(0.0, self.clock.now() - start)
                per_frame = decode_s / max(1, len(outcomes))
                for pending, outcome in zip(batch.pendings, outcomes):
                    verdicts.append(
                        self._decode_verdict(pending, outcome, now, per_frame)
                    )
                self._harvest_worker_losses(state)
            # 5. Feed supervisors, collect alerts, publish gauges.
            for verdict in verdicts:
                state = self._streams[verdict.stream]
                state.supervisor.observe(
                    verdict.status, verdict.deadline_missed
                )
                self._collect_alerts(state)
            for name, state in self._streams.items():
                instrument.set_gauge(
                    f"serve.queue_depth.{name}", state.queue.depth
                )
        for verdict in verdicts:
            self._accounts[verdict.tenant].record_verdict(
                verdict.status, recovered=verdict.recovered
            )
            instrument.incr(f"serve.verdicts.{verdict.status}")
            self._verdicts.append(verdict)
            if self.journal is not None:
                self.journal.append("verdict", self._journal_verdict(verdict))
            if self.on_verdict is not None:
                self.on_verdict(verdict)
        if self.journal is not None:
            # One durable flush per cycle: a crash loses at most the
            # current cycle's records, and at-least-once recovery
            # re-decodes exactly those frames.
            self.journal.flush()
        return verdicts

    @staticmethod
    def _journal_verdict(verdict: FrameVerdict) -> dict:
        """Compact journal form of a verdict (no frame payload)."""
        return {
            "seq": verdict.seq,
            "stream": verdict.stream,
            "tenant": verdict.tenant,
            "priority": verdict.priority,
            "status": verdict.status,
            "reason": verdict.reason,
            "cycle": verdict.cycle,
            "deadline_missed": verdict.deadline_missed,
            "recovered": verdict.recovered,
            "queue_latency_s": verdict.queue_latency_s,
            "decode_s": verdict.decode_s,
            "solver": None
            if verdict.outcome is None
            else verdict.outcome.solver,
        }

    def _harvest_worker_losses(self, state: _StreamState) -> None:
        """Turn supervised-executor losses into worker_lost alerts."""
        if not isinstance(self.executor, SupervisedExecutor):
            return
        for loss in self.executor.pop_losses():
            self._alerts.append(
                AlertEvent(
                    stream=state.config.name,
                    tenant=state.config.tenant,
                    kind="worker_lost",
                    detail=(
                        f"worker {loss.kind} on {loss.label!r} task "
                        f"{loss.index} (retry round {loss.retry_round}): "
                        f"{loss.error}"
                    ),
                    severity="critical",
                    observed_frames=state.supervisor.observed,
                )
            )
            instrument.incr("serve.alerts.worker_lost")

    def _shed_verdict(
        self, pending: PendingFrame, now: float, reason: str
    ) -> FrameVerdict:
        instrument.incr("serve.shed")
        return FrameVerdict(
            seq=pending.seq,
            stream=pending.stream,
            tenant=pending.tenant,
            priority=pending.priority,
            status="shed",
            reason=reason,
            queue_latency_s=max(0.0, now - pending.submitted_at),
            deadline_missed=reason == "deadline_expired",
            cycle=self._cycle,
            recovered=pending.recovered,
        )

    def _decode_verdict(
        self,
        pending: PendingFrame,
        outcome: DecodeOutcome,
        now: float,
        decode_s: float,
    ) -> FrameVerdict:
        status = _OUTCOME_TO_VERDICT.get(outcome.status, outcome.status)
        finished = self.clock.now()
        missed = pending.deadline is not None and finished > pending.deadline
        if missed and status == "decoded":
            # The work finished, but past its deadline: downgrade so the
            # caller knows the result arrived stale (wall-clock mode
            # only; the dispatch loop cancels already-expired frames).
            status = "degraded"
            instrument.incr("serve.deadline_miss_downgrades")
        return FrameVerdict(
            seq=pending.seq,
            stream=pending.stream,
            tenant=pending.tenant,
            priority=pending.priority,
            status=status,
            outcome=outcome,
            queue_latency_s=max(0.0, now - pending.submitted_at),
            decode_s=decode_s,
            deadline_missed=missed,
            cycle=self._cycle,
            recovered=pending.recovered,
        )

    # -- lifecycle / draining ----------------------------------------------
    @property
    def backlog(self) -> int:
        """Total frames currently queued across all streams."""
        return sum(s.queue.depth for s in self._streams.values())

    def drain(
        self,
        max_cycles: int = 1000,
        on_exhausted: str = "raise",
    ) -> DrainResult:
        """Run cycles until every queue is empty; returns all verdicts.

        Exhaustion -- backlog still non-empty after ``max_cycles`` --
        is never silent.  With ``on_exhausted="raise"`` (the default) a
        :class:`DrainExhausted` is raised carrying the partial verdict
        list; with ``on_exhausted="return"`` the verdicts come back as
        a :class:`DrainResult` whose ``drained`` attribute is ``False``
        -- an explicit marker the caller must check, for loops that
        interleave draining with other work and want to keep going.
        """
        if on_exhausted not in ("raise", "return"):
            raise ValueError(
                f"on_exhausted must be 'raise' or 'return', "
                f"got {on_exhausted!r}"
            )
        verdicts: list[FrameVerdict] = []
        for _ in range(max_cycles):
            if self.backlog == 0:
                return DrainResult(verdicts, drained=True)
            verdicts.extend(self.run_cycle())
        if self.backlog == 0:
            return DrainResult(verdicts, drained=True)
        if on_exhausted == "raise":
            raise DrainExhausted(
                f"backlog of {self.backlog} frame(s) left after "
                f"{max_cycles} drain cycles",
                verdicts=verdicts,
                backlog=self.backlog,
            )
        instrument.incr("serve.drain_exhausted")
        return DrainResult(verdicts, drained=False)

    def stop(self) -> DrainResult:
        """Stop admitting and drain the backlog; returns final verdicts.

        After ``stop`` every ``submit`` is rejected with
        ``"service_stopped"``; frames already admitted still receive
        their terminal verdicts (the zero-unanswered-frames contract
        survives shutdown).  An attached journal is flushed durable
        (but left open -- its owner closes it).
        """
        self._stopped = True
        verdicts = self.drain()
        if self.journal is not None:
            self.journal.flush()
        return verdicts

    # -- durability: checkpoint + crash recovery ----------------------------
    def checkpoint(self, compact: bool = False) -> dict:
        """Journal a checkpoint of the full recoverable state.

        The checkpoint carries the sequence counter, cycle counter,
        per-tenant accounting and every still-queued frame (payload
        included), so recovery can resume from it without replaying the
        records before it.  With ``compact=True`` the journal file is
        atomically rewritten as header + this checkpoint, reclaiming
        the space of the now-redundant prefix.  Requires a journal.
        """
        if self.journal is None:
            raise JournalError("checkpoint requires a journal")
        payload = {
            "seq": self._seq,
            "cycle": self._cycle,
            "accounts": {
                name: {
                    "submitted": account.submitted,
                    "admitted": account.admitted,
                    "rejected": dict(account.rejected),
                    "verdicts": dict(account.verdicts),
                    "recovered": account.recovered,
                }
                for name, account in sorted(self._accounts.items())
            },
            "pending": [
                {
                    "seq": pending.seq,
                    "stream": pending.stream,
                    "tenant": pending.tenant,
                    "priority": pending.priority,
                    "submitted_at": pending.submitted_at,
                    "deadline": pending.deadline,
                    "frame": pack_frame(pending.frame),
                }
                for state in self._streams.values()
                for pending in state.queue.peek_all()
            ],
        }
        if compact:
            self.journal.compact(payload)
        else:
            self.journal.append("checkpoint", payload)
            self.journal.flush()
        instrument.incr("serve.checkpoints")
        return payload

    def recover(self) -> list[int]:
        """Rebuild state from the attached journal after a crash.

        Replays the journal's durable records (the ones present when
        the journal was opened): per-tenant accounting, the sequence
        and cycle counters, and -- the heart of it -- every frame that
        was **admitted but never received a terminal verdict** is
        re-enqueued with ``recovered=True``, so its eventual verdict
        carries the at-least-once honesty flag.  Requires the service
        to be configured identically to the crashed one (same tenants
        and streams registered; plans are not serialised).  Returns the
        re-enqueued seqs, in order.

        Raises :class:`~repro.serve.durability.JournalError` when the
        journal references a tenant or stream this service does not
        know -- recovering into a half-configured service would silently
        orphan frames, the exact failure mode the journal exists to
        prevent.
        """
        if self.journal is None:
            raise JournalError("recover requires a journal")
        admits: dict[int, dict] = {}
        decided: set[int] = set()
        max_seq = 0
        max_cycle = 0
        accounts: dict[str, _TenantAccount] = {}

        def bucket(tenant: str) -> _TenantAccount:
            if tenant not in self._accounts:
                raise JournalError(
                    f"journal references unregistered tenant {tenant!r}; "
                    "recover into an identically configured service"
                )
            return accounts.setdefault(tenant, _TenantAccount())

        for record in self.journal.recovered_records:
            kind = record["type"]
            if kind == "admit":
                seq = int(record["seq"])
                if seq in admits:
                    continue
                admits[seq] = record
                max_seq = max(max_seq, seq)
                account = bucket(record["tenant"])
                account.submitted += 1
                account.admitted += 1
            elif kind == "reject":
                seq = int(record["seq"])
                max_seq = max(max_seq, seq)
                bucket(record["tenant"]).record_rejection(record["reason"])
            elif kind == "verdict":
                seq = int(record["seq"])
                if seq in decided:
                    continue
                decided.add(seq)
                max_seq = max(max_seq, seq)
                max_cycle = max(max_cycle, int(record.get("cycle") or 0))
                bucket(record["tenant"]).record_verdict(
                    record["status"],
                    recovered=bool(record.get("recovered", False)),
                )
            elif kind == "dispatch":
                max_cycle = max(max_cycle, int(record.get("cycle") or 0))
            elif kind == "checkpoint":
                # A checkpoint supersedes everything replayed so far.
                admits = {
                    int(entry["seq"]): entry
                    for entry in record.get("pending", [])
                }
                decided = set()
                accounts = {}
                for name, acct in record.get("accounts", {}).items():
                    if name not in self._accounts:
                        raise JournalError(
                            f"journal references unregistered tenant "
                            f"{name!r}; recover into an identically "
                            "configured service"
                        )
                    accounts[name] = _TenantAccount(
                        submitted=int(acct.get("submitted", 0)),
                        admitted=int(acct.get("admitted", 0)),
                        rejected=dict(acct.get("rejected", {})),
                        verdicts=dict(acct.get("verdicts", {})),
                        recovered=int(acct.get("recovered", 0)),
                    )
                max_seq = max(max_seq, int(record.get("seq") or 0))
                max_cycle = max(max_cycle, int(record.get("cycle") or 0))
        for tenant, account in accounts.items():
            self._accounts[tenant] = account
        self._seq = max(self._seq, max_seq)
        self._cycle = max(self._cycle, max_cycle)
        recovered_seqs: list[int] = []
        for seq in sorted(admits):
            if seq in decided:
                continue
            record = admits[seq]
            state = self._streams.get(record["stream"])
            if state is None:
                raise JournalError(
                    f"journal references unregistered stream "
                    f"{record['stream']!r}; recover into an identically "
                    "configured service"
                )
            deadline = record.get("deadline")
            pending = PendingFrame(
                seq=seq,
                stream=record["stream"],
                tenant=record["tenant"],
                priority=int(record.get("priority", state.priority)),
                frame=unpack_frame(record["frame"]),
                submitted_at=float(record.get("submitted_at", 0.0)),
                deadline=None if deadline is None else float(deadline),
                recovered=True,
            )
            # Force past the queue limit: recovery must never orphan an
            # admitted frame; the overload shedder answers any excess
            # honestly on the next cycle.
            state.queue.push(pending, force=True)
            recovered_seqs.append(seq)
        if recovered_seqs:
            instrument.incr("serve.recovered_frames", len(recovered_seqs))
        for name, state in self._streams.items():
            instrument.set_gauge(
                f"serve.queue_depth.{name}", state.queue.depth
            )
        return recovered_seqs

    def _collect_alerts(self, state: _StreamState) -> None:
        self._alerts.extend(state.supervisor.pop_alerts())

    def pop_alerts(self) -> tuple[AlertEvent, ...]:
        """Drain the alert events raised since the last call."""
        alerts = tuple(self._alerts)
        self._alerts.clear()
        return alerts

    def verdicts(self) -> tuple[FrameVerdict, ...]:
        """Every verdict issued so far (the service's audit log)."""
        return tuple(self._verdicts)

    # -- reporting ----------------------------------------------------------
    def report(self) -> dict:
        """JSON-safe service report: accounting, health, alerts.

        The machine-readable artifact the CI serve-smoke job uploads:
        per-tenant submission/rejection/verdict accounting, per-stream
        supervisor snapshots, and every alert raised so far (alerts are
        *not* drained -- ``pop_alerts`` owns consumption).
        """
        tenants: dict[str, dict] = {}
        for name, account in sorted(self._accounts.items()):
            tenants[name] = {
                "submitted": account.submitted,
                "admitted": account.admitted,
                "rejected": dict(sorted(account.rejected.items())),
                "verdicts": dict(sorted(account.verdicts.items())),
                "recovered": account.recovered,
            }
        return instrument.json_safe(
            {
                "schema": SERVE_SCHEMA,
                "cycles": self._cycle,
                "backlog": self.backlog,
                "stopped": self._stopped,
                "journal": None
                if self.journal is None
                else str(self.journal.path),
                "tenants": tenants,
                "streams": {
                    name: state.supervisor.snapshot()
                    for name, state in sorted(self._streams.items())
                },
                "alerts": [a.to_dict() for a in self._alerts],
            }
        )
