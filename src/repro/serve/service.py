"""The multi-tenant decode service core: admit, queue, shed, decode, answer.

:class:`DecodeService` is the deterministic heart of :mod:`repro.serve`
-- a single-threaded state machine that the asyncio front end
(:mod:`repro.serve.async_service`) drives in production and that tests
drive directly with a :class:`~repro.serve.clock.VirtualClock`.  Its
contract, enforced by the overload acceptance tests:

**every submitted frame gets exactly one terminal answer.**  Either the
submission is *rejected* on the spot (ticket status ``"rejected"`` with
a reason from :data:`~repro.serve.admission.REJECTION_REASONS`), or it
is admitted and later receives exactly one :class:`FrameVerdict` --
``decoded``, ``degraded``, ``fallback``, ``failed`` or ``shed`` (with a
reason).  Nothing is ever dropped silently, and an accepted frame is
never left unanswered.

One call to :meth:`DecodeService.run_cycle` performs one dispatch
cycle:

1. expire queued frames whose deadline has passed (terminal
   ``shed``/``deadline_expired`` verdicts -- expired work is cancelled,
   not decoded into a worthless result);
2. select up to ``cycle_budget`` frames by (priority desc, submission
   order) across all streams;
3. shed the lowest-priority, stalest backlog beyond ``backlog_limit``
   (terminal ``shed``/``overload_shed`` verdicts);
4. coalesce the selected frames into per-stream
   :meth:`~repro.core.engine.DecodeEngine.decode_batch` calls on the
   shared executor (supervised streams decode frame-at-a-time through
   their :class:`~repro.resilience.runtime.ResilientDecoder`);
5. issue verdicts, feed each stream's
   :class:`~repro.serve.supervisor.StreamSupervisor`, and collect any
   alerts the supervisors raised.

All of it is instrumented under ``serve.*`` so the profiling CLI and
the bench trend job can watch the service like any other subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import instrument
from ..core.engine import DecodeContext
from ..core.executor import Executor, resolve_executor
from ..resilience.health import FrameGuard
from ..resilience.runtime import DecodeOutcome, ResilientDecoder
from .admission import REJECTION_REASONS, AdmissionController, Quota
from .clock import Clock, MonotonicClock
from .coalescer import Coalescer, decode_pending
from .queueing import (
    PendingFrame,
    StreamQueue,
    select_for_dispatch,
    shed_overload,
)
from .supervisor import AlertEvent, StreamSupervisor

__all__ = [
    "DecodeService",
    "FrameVerdict",
    "StreamConfig",
    "SubmitTicket",
    "TenantConfig",
]

#: Schema tag stamped on every ticket, verdict and service report.
SERVE_SCHEMA = "repro.serve/v1"

#: Verdict statuses that mean "a real reconstruction was delivered".
SUCCESS_STATUSES = ("decoded", "degraded")

_OUTCOME_TO_VERDICT = {
    "ok": "decoded",
    "degraded": "degraded",
    "fallback": "fallback",
    "failed": "failed",
}


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's registration: identity, priority and rate quota.

    Parameters
    ----------
    name:
        Tenant identifier (accounting key).
    priority:
        Default priority of the tenant's streams; higher decodes first
        and sheds last.
    quota:
        Tenant-wide admission :class:`~repro.serve.admission.Quota`
        shared by all the tenant's streams (``None`` = unlimited).
    """

    name: str
    priority: int = 0
    quota: Quota | None = None


@dataclass(frozen=True)
class StreamConfig:
    """One stream's registration: its frozen plan plus service knobs.

    Parameters
    ----------
    name:
        Stream identifier (unique service-wide).
    tenant:
        Owning tenant (must be registered first).
    plan:
        The frozen :class:`~repro.core.engine.DecodeContext` every
        frame of this stream decodes under.
    policy:
        Optional :class:`~repro.resilience.policies.ResiliencePolicy`;
        when set the stream decodes through a dedicated
        :class:`~repro.resilience.runtime.ResilientDecoder` whose
        breaker/guard state persists across frames.
    adaptive:
        Optional :class:`~repro.resilience.adaptive.AdaptivePolicy`
        feedback controller plugged into the stream's decoder.
    quota:
        Per-stream admission quota (``None`` = tenant quota only).
    priority:
        Override of the tenant's priority for this stream.
    queue_limit:
        Bounded-queue capacity (the hard backpressure limit).
    seed:
        Seed of the stream's private RNG (``Phi_M`` draws and noise);
        streams are RNG-isolated so one tenant's traffic can never
        perturb another's reconstructions.
    shared_phi:
        Reuse one sampling pattern per coalesced batch (the
        streaming-hardware regime; enables the multi-RHS fast path).
    deadline_s:
        Default per-frame deadline, as seconds after submission;
        ``None`` = no deadline unless ``submit`` passes one.
    """

    name: str
    tenant: str
    plan: DecodeContext
    policy: object | None = None
    adaptive: object | None = None
    quota: Quota | None = None
    priority: int | None = None
    queue_limit: int = 32
    seed: int = 0
    shared_phi: bool = False
    deadline_s: float | None = None


@dataclass(frozen=True)
class SubmitTicket:
    """The immediate, machine-readable answer to one ``submit`` call.

    ``status`` is the backpressure signal:

    * ``"accepted"`` -- queued with headroom;
    * ``"queued"``   -- queued, but the stream is past its high-water
      mark (polite clients should slow down);
    * ``"rejected"`` -- not queued; ``reason`` names why (one of
      :data:`~repro.serve.admission.REJECTION_REASONS`) and no verdict
      will follow.
    """

    seq: int
    stream: str
    tenant: str
    status: str
    reason: str | None = None
    queue_depth: int = 0
    submitted_at: float = 0.0

    @property
    def admitted(self) -> bool:
        """Whether the frame entered the queue (a verdict will follow)."""
        return self.status in ("accepted", "queued")

    def to_dict(self) -> dict:
        """JSON-safe ticket (schema-tagged)."""
        return instrument.json_safe(
            {
                "schema": SERVE_SCHEMA,
                "seq": self.seq,
                "stream": self.stream,
                "tenant": self.tenant,
                "status": self.status,
                "reason": self.reason,
                "queue_depth": self.queue_depth,
                "submitted_at": self.submitted_at,
            }
        )


@dataclass
class FrameVerdict:
    """The terminal answer for one admitted frame.

    Attributes
    ----------
    seq, stream, tenant, priority:
        Identity copied from the :class:`~repro.serve.queueing.PendingFrame`.
    status:
        ``"decoded"`` | ``"degraded"`` | ``"fallback"`` | ``"failed"``
        | ``"shed"``.
    reason:
        Shed reason (``"deadline_expired"`` / ``"overload_shed"``),
        ``None`` for decoded frames.
    outcome:
        The full :class:`~repro.resilience.runtime.DecodeOutcome` for
        decoded/degraded/fallback/failed frames (``None`` for sheds).
    queue_latency_s:
        Clock time the frame spent between admission and dispatch (or
        shedding).
    decode_s:
        Clock time the decode itself took (0 for sheds).
    deadline_missed:
        ``True`` when the frame had a deadline and its terminal answer
        landed after it (always ``False`` for ``decoded`` frames under
        the service contract: expired frames are cancelled, not
        decoded).
    cycle:
        Dispatch cycle index that produced the verdict.
    """

    seq: int
    stream: str
    tenant: str
    priority: int
    status: str
    reason: str | None = None
    outcome: DecodeOutcome | None = None
    queue_latency_s: float = 0.0
    decode_s: float = 0.0
    deadline_missed: bool = False
    cycle: int = -1

    @property
    def delivered_frame(self) -> np.ndarray | None:
        """The reconstruction, when one exists (``None`` for sheds)."""
        return None if self.outcome is None else self.outcome.frame

    def to_dict(self) -> dict:
        """JSON-safe verdict: ``DecodeOutcome.to_dict()`` + service fields.

        This is the service's response/log schema: the existing outcome
        schema rides along unchanged under ``"outcome"``, with the
        serving-layer accounting (queue latency, shed reason, deadline
        verdict, tenant identity) beside it.
        """
        return instrument.json_safe(
            {
                "schema": SERVE_SCHEMA,
                "seq": self.seq,
                "stream": self.stream,
                "tenant": self.tenant,
                "priority": self.priority,
                "status": self.status,
                "reason": self.reason,
                "queue_latency_s": self.queue_latency_s,
                "decode_s": self.decode_s,
                "deadline_missed": self.deadline_missed,
                "cycle": self.cycle,
                "outcome": None
                if self.outcome is None
                else self.outcome.to_dict(),
            }
        )


@dataclass
class _StreamState:
    """Internal per-stream runtime state (plan, queue, decoder, health)."""

    config: StreamConfig
    priority: int
    queue: StreamQueue
    rng: np.random.Generator
    supervisor: StreamSupervisor
    decoder: ResilientDecoder | None = None


@dataclass
class _TenantAccount:
    """Per-tenant accounting the service report exposes."""

    submitted: int = 0
    admitted: int = 0
    rejected: dict = field(default_factory=dict)
    verdicts: dict = field(default_factory=dict)

    def record_rejection(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def record_verdict(self, status: str) -> None:
        self.verdicts[status] = self.verdicts.get(status, 0) + 1


class DecodeService:
    """Multi-tenant frame-decode service (deterministic core).

    Parameters
    ----------
    executor:
        Shared decode executor for plain-stream batches -- anything
        :func:`~repro.core.executor.resolve_executor` accepts.
        ``None`` solves in-process (and is what the deterministic
        tests use).
    clock:
        Time source; defaults to wall time
        (:class:`~repro.serve.clock.MonotonicClock`).  Tests inject a
        :class:`~repro.serve.clock.VirtualClock`.
    cycle_budget:
        Maximum frames decoded per :meth:`run_cycle` -- the service's
        capacity model.
    max_batch:
        Largest single ``decode_batch`` call (see
        :class:`~repro.serve.coalescer.Coalescer`).
    backlog_limit:
        Post-dispatch backlog watermark for sustained-overload
        shedding; ``None`` disables global shedding (per-stream queue
        limits still bound memory).  Defaults to ``2 * cycle_budget``.
    on_verdict:
        Optional callback invoked with every :class:`FrameVerdict` as
        it is issued (the asyncio front end resolves futures with it).
    """

    def __init__(
        self,
        executor: Executor | str | int | None = None,
        clock: Clock | None = None,
        cycle_budget: int = 8,
        max_batch: int = 8,
        backlog_limit: int | None = None,
        on_verdict: Callable[[FrameVerdict], None] | None = None,
    ):
        if cycle_budget < 1:
            raise ValueError(f"cycle_budget must be >= 1, got {cycle_budget}")
        self.clock = clock if clock is not None else MonotonicClock()
        self.executor = resolve_executor(executor)
        self.cycle_budget = int(cycle_budget)
        self.backlog_limit = (
            2 * self.cycle_budget if backlog_limit is None else backlog_limit
        )
        if self.backlog_limit < 0:
            raise ValueError(
                f"backlog_limit must be >= 0, got {self.backlog_limit}"
            )
        self.on_verdict = on_verdict
        self._admission = AdmissionController(self.clock)
        self._coalescer = Coalescer(max_batch=max_batch)
        self._tenants: dict[str, TenantConfig] = {}
        self._accounts: dict[str, _TenantAccount] = {}
        self._streams: dict[str, _StreamState] = {}
        self._seq = 0
        self._cycle = 0
        self._stopped = False
        self._alerts: list[AlertEvent] = []
        self._verdicts: list[FrameVerdict] = []

    # -- registration -------------------------------------------------------
    def register_tenant(self, config: TenantConfig) -> None:
        """Register a tenant (idempotent re-registration replaces quotas)."""
        self._tenants[config.name] = config
        self._accounts.setdefault(config.name, _TenantAccount())
        self._admission.register_tenant(config.name, config.quota)

    def register_stream(self, config: StreamConfig) -> None:
        """Register a stream under an already-registered tenant.

        Builds the stream's runtime state: bounded queue, private RNG,
        health supervisor, and -- when a policy or adaptive controller
        is configured -- a dedicated supervised decoder whose breaker
        and last-good-frame guard persist across the stream's frames.
        """
        if config.tenant not in self._tenants:
            raise KeyError(
                f"unknown tenant {config.tenant!r}; register_tenant first"
            )
        if config.name in self._streams:
            raise ValueError(f"stream {config.name!r} already registered")
        tenant = self._tenants[config.tenant]
        decoder = None
        if config.policy is not None or config.adaptive is not None:
            base = (
                config.policy
                if config.policy is not None
                else config.adaptive.base
            )
            decoder = ResilientDecoder(
                policy=base, guard=FrameGuard(), adaptive=config.adaptive
            )
        self._streams[config.name] = _StreamState(
            config=config,
            priority=(
                tenant.priority if config.priority is None
                else config.priority
            ),
            queue=StreamQueue(limit=config.queue_limit),
            rng=np.random.default_rng(config.seed),
            supervisor=StreamSupervisor(
                stream=config.name, tenant=config.tenant
            ),
            decoder=decoder,
        )
        self._admission.register_stream(config.name, config.quota)
        instrument.set_gauge("serve.streams", len(self._streams))

    # -- submission (admission control) -------------------------------------
    def submit(
        self,
        stream: str,
        frame: np.ndarray,
        deadline_s: float | None = None,
    ) -> SubmitTicket:
        """Offer one frame; returns the admission ticket immediately.

        ``deadline_s`` is relative to now (falling back to the stream's
        configured default).  The ticket is the explicit backpressure
        signal: ``accepted`` / ``queued`` (verdict will follow) or
        ``rejected`` with a machine-readable reason (terminal -- no
        verdict follows).  Unknown streams raise ``KeyError``: that is
        a caller bug, not an operational condition.
        """
        state = self._streams.get(stream)
        if state is None:
            raise KeyError(f"unknown stream {stream!r}")
        now = self.clock.now()
        self._seq += 1
        seq = self._seq
        account = self._accounts[state.config.tenant]
        account.submitted += 1
        instrument.incr("serve.submitted")
        if self._stopped:
            return self._reject(state, account, seq, now, "service_stopped")
        frame = np.asarray(frame, dtype=float)
        if frame.shape != state.config.plan.shape or not np.all(
            np.isfinite(frame)
        ):
            return self._reject(state, account, seq, now, "invalid_frame")
        if deadline_s is None:
            deadline_s = state.config.deadline_s
        deadline = None if deadline_s is None else now + float(deadline_s)
        if deadline is not None and deadline <= now:
            return self._reject(
                state, account, seq, now, "deadline_unsatisfiable"
            )
        if not state.supervisor.admit():
            self._collect_alerts(state)
            return self._reject(state, account, seq, now, "breaker_open")
        self._collect_alerts(state)
        reason = self._admission.admit(state.config.tenant, stream)
        if reason is not None:
            return self._reject(state, account, seq, now, reason)
        pending = PendingFrame(
            seq=seq,
            stream=stream,
            tenant=state.config.tenant,
            priority=state.priority,
            frame=frame,
            submitted_at=now,
            deadline=deadline,
        )
        if not state.queue.push(pending):
            return self._reject(state, account, seq, now, "queue_full")
        account.admitted += 1
        instrument.incr("serve.admitted")
        instrument.set_gauge(f"serve.queue_depth.{stream}", state.queue.depth)
        status = "queued" if state.queue.congested else "accepted"
        return SubmitTicket(
            seq=seq,
            stream=stream,
            tenant=state.config.tenant,
            status=status,
            queue_depth=state.queue.depth,
            submitted_at=now,
        )

    def _reject(
        self,
        state: _StreamState,
        account: _TenantAccount,
        seq: int,
        now: float,
        reason: str,
    ) -> SubmitTicket:
        assert reason in REJECTION_REASONS, reason
        account.record_rejection(reason)
        instrument.incr("serve.rejected")
        instrument.incr(f"serve.rejected.{reason}")
        return SubmitTicket(
            seq=seq,
            stream=state.config.name,
            tenant=state.config.tenant,
            status="rejected",
            reason=reason,
            queue_depth=state.queue.depth,
            submitted_at=now,
        )

    # -- the dispatch cycle -------------------------------------------------
    def run_cycle(self) -> list[FrameVerdict]:
        """Run one dispatch cycle; returns the verdicts it produced."""
        self._cycle += 1
        now = self.clock.now()
        verdicts: list[FrameVerdict] = []
        queues = {name: s.queue for name, s in self._streams.items()}
        with instrument.span("serve.cycle", cycle=self._cycle):
            instrument.incr("serve.cycles")
            # 1. Cancel queued frames whose deadline already passed.
            for state in self._streams.values():
                for pending in state.queue.expire(now):
                    verdicts.append(
                        self._shed_verdict(pending, now, "deadline_expired")
                    )
            # 2. Priority-ordered dispatch under the cycle budget.
            dispatched = select_for_dispatch(queues, self.cycle_budget)
            # 3. Sustained-overload shedding of the remaining backlog.
            for pending in shed_overload(queues, self.backlog_limit):
                verdicts.append(
                    self._shed_verdict(pending, now, "overload_shed")
                )
            # 4. Coalesced decode of the dispatched frames.
            for batch in self._coalescer.coalesce(dispatched):
                state = self._streams[batch.stream]
                start = self.clock.now()
                outcomes = decode_pending(
                    batch,
                    state.config.plan,
                    state.rng,
                    decoder=state.decoder,
                    executor=self.executor,
                    shared_phi=state.config.shared_phi,
                )
                decode_s = max(0.0, self.clock.now() - start)
                per_frame = decode_s / max(1, len(outcomes))
                for pending, outcome in zip(batch.pendings, outcomes):
                    verdicts.append(
                        self._decode_verdict(pending, outcome, now, per_frame)
                    )
            # 5. Feed supervisors, collect alerts, publish gauges.
            for verdict in verdicts:
                state = self._streams[verdict.stream]
                state.supervisor.observe(
                    verdict.status, verdict.deadline_missed
                )
                self._collect_alerts(state)
            for name, state in self._streams.items():
                instrument.set_gauge(
                    f"serve.queue_depth.{name}", state.queue.depth
                )
        for verdict in verdicts:
            self._accounts[verdict.tenant].record_verdict(verdict.status)
            instrument.incr(f"serve.verdicts.{verdict.status}")
            self._verdicts.append(verdict)
            if self.on_verdict is not None:
                self.on_verdict(verdict)
        return verdicts

    def _shed_verdict(
        self, pending: PendingFrame, now: float, reason: str
    ) -> FrameVerdict:
        instrument.incr("serve.shed")
        return FrameVerdict(
            seq=pending.seq,
            stream=pending.stream,
            tenant=pending.tenant,
            priority=pending.priority,
            status="shed",
            reason=reason,
            queue_latency_s=max(0.0, now - pending.submitted_at),
            deadline_missed=reason == "deadline_expired",
            cycle=self._cycle,
        )

    def _decode_verdict(
        self,
        pending: PendingFrame,
        outcome: DecodeOutcome,
        now: float,
        decode_s: float,
    ) -> FrameVerdict:
        status = _OUTCOME_TO_VERDICT.get(outcome.status, outcome.status)
        finished = self.clock.now()
        missed = pending.deadline is not None and finished > pending.deadline
        if missed and status == "decoded":
            # The work finished, but past its deadline: downgrade so the
            # caller knows the result arrived stale (wall-clock mode
            # only; the dispatch loop cancels already-expired frames).
            status = "degraded"
            instrument.incr("serve.deadline_miss_downgrades")
        return FrameVerdict(
            seq=pending.seq,
            stream=pending.stream,
            tenant=pending.tenant,
            priority=pending.priority,
            status=status,
            outcome=outcome,
            queue_latency_s=max(0.0, now - pending.submitted_at),
            decode_s=decode_s,
            deadline_missed=missed,
            cycle=self._cycle,
        )

    # -- lifecycle / draining ----------------------------------------------
    @property
    def backlog(self) -> int:
        """Total frames currently queued across all streams."""
        return sum(s.queue.depth for s in self._streams.values())

    def drain(self, max_cycles: int = 1000) -> list[FrameVerdict]:
        """Run cycles until every queue is empty; returns all verdicts.

        Raises ``RuntimeError`` if the backlog fails to empty within
        ``max_cycles`` (a wedged queue is a bug, not a steady state).
        """
        verdicts: list[FrameVerdict] = []
        for _ in range(max_cycles):
            if self.backlog == 0:
                return verdicts
            verdicts.extend(self.run_cycle())
        if self.backlog:
            raise RuntimeError(
                f"backlog of {self.backlog} frame(s) left after "
                f"{max_cycles} drain cycles"
            )
        return verdicts

    def stop(self) -> list[FrameVerdict]:
        """Stop admitting and drain the backlog; returns final verdicts.

        After ``stop`` every ``submit`` is rejected with
        ``"service_stopped"``; frames already admitted still receive
        their terminal verdicts (the zero-unanswered-frames contract
        survives shutdown).
        """
        self._stopped = True
        return self.drain()

    def _collect_alerts(self, state: _StreamState) -> None:
        self._alerts.extend(state.supervisor.pop_alerts())

    def pop_alerts(self) -> tuple[AlertEvent, ...]:
        """Drain the alert events raised since the last call."""
        alerts = tuple(self._alerts)
        self._alerts.clear()
        return alerts

    def verdicts(self) -> tuple[FrameVerdict, ...]:
        """Every verdict issued so far (the service's audit log)."""
        return tuple(self._verdicts)

    # -- reporting ----------------------------------------------------------
    def report(self) -> dict:
        """JSON-safe service report: accounting, health, alerts.

        The machine-readable artifact the CI serve-smoke job uploads:
        per-tenant submission/rejection/verdict accounting, per-stream
        supervisor snapshots, and every alert raised so far (alerts are
        *not* drained -- ``pop_alerts`` owns consumption).
        """
        tenants: dict[str, dict] = {}
        for name, account in sorted(self._accounts.items()):
            tenants[name] = {
                "submitted": account.submitted,
                "admitted": account.admitted,
                "rejected": dict(sorted(account.rejected.items())),
                "verdicts": dict(sorted(account.verdicts.items())),
            }
        return instrument.json_safe(
            {
                "schema": SERVE_SCHEMA,
                "cycles": self._cycle,
                "backlog": self.backlog,
                "stopped": self._stopped,
                "tenants": tenants,
                "streams": {
                    name: state.supervisor.snapshot()
                    for name, state in sorted(self._streams.items())
                },
                "alerts": [a.to_dict() for a in self._alerts],
            }
        )
