"""Per-stream health supervision: escalation alerts and stream breakers.

The resilience layer already supervises individual *solves*
(:class:`~repro.resilience.policies.CircuitBreaker` sidelines a
repeatedly failing solver).  The serving layer needs the same idea one
level up: a *stream* whose decodes keep failing, or whose frames keep
missing deadlines, should stop consuming admission and decode budget
until it recovers -- and operators should hear about it.

:class:`StreamSupervisor` watches the terminal verdicts of one stream
over a sliding window and

* emits an :class:`AlertEvent` when the window's fault ratio or
  deadline-miss/shed ratio crosses its threshold (mirroring the
  :class:`~repro.resilience.adaptive.AdaptationEvent` pattern: frozen,
  JSON-safe, drainable);
* trips a stream-level circuit breaker (closed -> open) on a critical
  fault ratio, rejecting further submissions with ``"breaker_open"``;
* after ``cooldown`` rejected submissions goes half-open, admits one
  probe frame, and closes again only when the probe decodes.

Like every breaker in this repo the state machine is **count-based**,
never wall-clock-based, so chaos tests replay bit-identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .. import instrument

__all__ = ["AlertEvent", "StreamSupervisor"]

#: Verdict statuses that count as decode faults for the fault ratio.
_FAULT_STATUSES = ("fallback", "failed")

#: Verdict statuses that count as losses for the loss (shed) ratio.
_LOSS_STATUSES = ("shed",)


@dataclass(frozen=True)
class AlertEvent:
    """One supervisor alert (the ``AdaptationEvent`` of the serve layer).

    Attributes
    ----------
    stream:
        Stream the alert concerns.
    tenant:
        Tenant owning the stream.
    kind:
        ``"loss_ratio_high"`` | ``"breaker_open"`` |
        ``"breaker_half_open"`` | ``"breaker_closed"``.
    detail:
        Human-readable specifics (ratios, window size, probe result).
    severity:
        ``"warning"`` (degradation) or ``"critical"`` (breaker trip).
    observed_frames:
        Stream-local count of terminal verdicts observed when the
        alert fired (a deterministic logical timestamp).
    """

    stream: str
    tenant: str
    kind: str
    detail: str
    severity: str
    observed_frames: int

    def to_dict(self) -> dict:
        """JSON-safe form for reports and response streams."""
        return instrument.json_safe(
            {
                "stream": self.stream,
                "tenant": self.tenant,
                "kind": self.kind,
                "detail": self.detail,
                "severity": self.severity,
                "observed_frames": self.observed_frames,
            }
        )


@dataclass
class StreamSupervisor:
    """Sliding-window health tracker + circuit breaker for one stream.

    Parameters
    ----------
    stream, tenant:
        Identity stamped onto every alert.
    window:
        Number of recent terminal verdicts the ratios are computed over.
    fault_ratio_threshold:
        Fraction of faulted decodes (``fallback``/``failed``) in the
        window that trips the breaker (critical alert).
    loss_ratio_threshold:
        Fraction of shed frames in the window that raises a warning
        alert (sheds are a capacity signal, not a stream defect, so
        they warn rather than trip).
    min_observations:
        Ratios are not evaluated before this many verdicts have been
        seen (a lone early fault is not a 100% fault rate).
    cooldown:
        Breaker-open submissions to reject before going half-open.
    """

    stream: str
    tenant: str
    window: int = 16
    fault_ratio_threshold: float = 0.5
    loss_ratio_threshold: float = 0.5
    min_observations: int = 4
    cooldown: int = 8

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        for name in ("fault_ratio_threshold", "loss_ratio_threshold"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )
        if self.cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {self.cooldown}")
        self._statuses: deque[str] = deque(maxlen=self.window)
        self._observed = 0
        self._state = "closed"
        self._open_rejections = 0
        self._probe_in_flight = False
        self._alerts: list[AlertEvent] = []
        self._alerted: set[str] = set()

    # -- state the service reads -------------------------------------------
    @property
    def state(self) -> str:
        """Breaker state: ``"closed"`` | ``"open"`` | ``"half_open"``."""
        return self._state

    @property
    def observed(self) -> int:
        """Terminal verdicts observed so far (lifetime count)."""
        return self._observed

    def ratios(self) -> dict:
        """Current window ratios: ``{"fault": f, "loss": l, "frames": n}``."""
        n = len(self._statuses)
        if n == 0:
            return {"fault": 0.0, "loss": 0.0, "frames": 0}
        fault = sum(1 for s in self._statuses if s in _FAULT_STATUSES)
        loss = sum(1 for s in self._statuses if s in _LOSS_STATUSES)
        return {"fault": fault / n, "loss": loss / n, "frames": n}

    def pop_alerts(self) -> tuple[AlertEvent, ...]:
        """Drain the alerts raised since the last call."""
        alerts = tuple(self._alerts)
        self._alerts.clear()
        return alerts

    # -- the submission gate ------------------------------------------------
    def admit(self) -> bool:
        """Gate one submission against the stream breaker.

        Closed: always admit.  Open: reject (counting toward the
        cooldown) until the cooldown elapses, then flip to half-open
        and admit exactly one probe frame.  Half-open with a probe
        already in flight: reject until the probe's verdict lands.
        """
        if self._state == "closed":
            return True
        if self._state == "open":
            self._open_rejections += 1
            if self._open_rejections > self.cooldown:
                self._state = "half_open"
                self._probe_in_flight = True
                self._alert(
                    "breaker_half_open",
                    f"cooldown of {self.cooldown} rejections elapsed; "
                    "admitting one probe frame",
                    "warning",
                )
                instrument.incr("serve.breaker.half_open")
                return True
            instrument.incr("serve.breaker.rejections")
            return False
        # half_open: one probe at a time.
        if self._probe_in_flight:
            instrument.incr("serve.breaker.rejections")
            return False
        self._probe_in_flight = True
        return True

    # -- the verdict feedback ----------------------------------------------
    def observe(self, status: str, deadline_missed: bool = False) -> None:
        """Feed one terminal verdict back into the health window.

        ``status`` is the verdict status (``decoded`` | ``degraded`` |
        ``fallback`` | ``failed`` | ``shed``); ``deadline_missed``
        marks a decoded frame that completed past its deadline (counted
        as a loss -- the work was done but arrived worthless).
        """
        effective = "shed" if deadline_missed and status not in (
            "fallback",
            "failed",
        ) else status
        self._statuses.append(effective)
        self._observed += 1
        if self._state == "half_open":
            self._probe_in_flight = False
            if status in ("decoded", "degraded") and not deadline_missed:
                self._state = "closed"
                self._open_rejections = 0
                # Fresh window: the faults that tripped the breaker are
                # history, not evidence against the recovered stream.
                self._statuses.clear()
                self._alert(
                    "breaker_closed",
                    "probe frame decoded; stream re-admitted",
                    "warning",
                )
                instrument.incr("serve.breaker.closed")
            else:
                self._state = "open"
                self._open_rejections = 0
                self._alert(
                    "breaker_open",
                    f"probe frame {status}; breaker re-opened",
                    "critical",
                )
                instrument.incr("serve.breaker.reopened")
            return
        ratios = self.ratios()
        if ratios["frames"] < self.min_observations:
            return
        if (
            ratios["loss"] >= self.loss_ratio_threshold
            and "loss_ratio_high" not in self._alerted
        ):
            self._alerted.add("loss_ratio_high")
            self._alert(
                "loss_ratio_high",
                f"shed/deadline-loss ratio {ratios['loss']:.0%} over the "
                f"last {ratios['frames']} frames "
                f"(threshold {self.loss_ratio_threshold:.0%})",
                "warning",
            )
        elif ratios["loss"] < self.loss_ratio_threshold:
            self._alerted.discard("loss_ratio_high")
        if (
            self._state == "closed"
            and ratios["fault"] >= self.fault_ratio_threshold
        ):
            self._state = "open"
            self._open_rejections = 0
            self._alert(
                "breaker_open",
                f"fault ratio {ratios['fault']:.0%} over the last "
                f"{ratios['frames']} frames "
                f"(threshold {self.fault_ratio_threshold:.0%}); "
                "rejecting submissions",
                "critical",
            )
            instrument.incr("serve.breaker.opened")

    def snapshot(self) -> dict:
        """JSON-safe health snapshot for the service report."""
        ratios = self.ratios()
        return instrument.json_safe(
            {
                "stream": self.stream,
                "tenant": self.tenant,
                "breaker": self._state,
                "observed_frames": self._observed,
                "window_fault_ratio": ratios["fault"],
                "window_loss_ratio": ratios["loss"],
            }
        )

    def _alert(self, kind: str, detail: str, severity: str) -> None:
        self._alerts.append(
            AlertEvent(
                stream=self.stream,
                tenant=self.tenant,
                kind=kind,
                detail=detail,
                severity=severity,
                observed_frames=self._observed,
            )
        )
        instrument.incr(f"serve.alerts.{kind}")
