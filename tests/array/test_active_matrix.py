"""Tests for the active-matrix sensor array model."""

import numpy as np
import pytest

from repro.array.active_matrix import ActiveMatrix
from repro.devices.defects import DefectMap, DefectType, PixelDefect
from repro.devices.variation import VariationModel


class TestConstruction:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ActiveMatrix((0, 4))

    def test_defect_map_shape_checked(self):
        defects = DefectMap(shape=(4, 4))
        with pytest.raises(ValueError):
            ActiveMatrix((8, 8), defect_map=defects)

    def test_ideal_array_uniform_resistance(self):
        array = ActiveMatrix((4, 4))
        resistances = array.on_resistances
        assert np.allclose(resistances, resistances[0, 0])

    def test_variation_spreads_resistance(self):
        array = ActiveMatrix(
            (8, 8), variation=VariationModel(mobility_sigma=0.2, seed=0)
        )
        assert array.on_resistances.std() > 0


class TestTemperatureMode:
    def test_currents_decrease_with_temperature(self):
        array = ActiveMatrix((4, 4))
        cold = array.read_currents(np.full((4, 4), 20.0))
        hot = array.read_currents(np.full((4, 4), 90.0))
        assert np.all(hot < cold)

    def test_field_shape_checked(self):
        array = ActiveMatrix((4, 4))
        with pytest.raises(ValueError):
            array.read_currents(np.zeros((3, 3)))

    def test_open_defect_reads_near_zero(self):
        defects = DefectMap(
            shape=(4, 4), defects=[PixelDefect(1, 2, DefectType.OPEN_CHANNEL)]
        )
        array = ActiveMatrix((4, 4), defect_map=defects)
        currents = array.read_currents(np.full((4, 4), 50.0))
        assert currents[1, 2] < 1e-9

    def test_short_defect_reads_extreme_high(self):
        defects = DefectMap(
            shape=(4, 4), defects=[PixelDefect(0, 0, DefectType.METALLIC_SHORT)]
        )
        array = ActiveMatrix((4, 4), defect_map=defects)
        currents = array.read_currents(np.full((4, 4), 50.0))
        assert currents[0, 0] > 10 * currents[1, 1]

    def test_current_bounds_ordered(self):
        array = ActiveMatrix((4, 4))
        low, high = array.current_bounds(20.0, 100.0)
        assert low < high

    def test_degenerate_span_rejected(self):
        array = ActiveMatrix((4, 4))
        with pytest.raises(ValueError):
            array.current_bounds(50.0, 50.0)


class TestNormalizedMode:
    def test_ideal_transduction_is_identity(self):
        array = ActiveMatrix((6, 6))
        frame = np.random.default_rng(0).random((6, 6))
        assert np.allclose(array.transduce(frame), frame)

    def test_defects_stick(self):
        defects = DefectMap(
            shape=(4, 4),
            defects=[
                PixelDefect(0, 0, DefectType.METALLIC_SHORT),
                PixelDefect(3, 3, DefectType.OPEN_CHANNEL),
            ],
        )
        array = ActiveMatrix((4, 4), defect_map=defects)
        out = array.transduce(np.full((4, 4), 0.5))
        assert out[0, 0] == 1.0
        assert out[3, 3] == 0.0

    def test_variation_perturbs_gain(self):
        array = ActiveMatrix(
            (8, 8), variation=VariationModel(mobility_sigma=0.1, seed=1)
        )
        frame = np.full((8, 8), 0.5)
        out = array.transduce(frame)
        assert not np.allclose(out, frame)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_shape_checked(self):
        array = ActiveMatrix((4, 4))
        with pytest.raises(ValueError):
            array.transduce(np.zeros((2, 2)))

    def test_defect_mask_property(self):
        defects = DefectMap(
            shape=(4, 4), defects=[PixelDefect(2, 2, DefectType.GATE_LEAK)]
        )
        array = ActiveMatrix((4, 4), defect_map=defects)
        mask = array.defect_mask
        assert mask[2, 2]
        assert mask.sum() == 1
