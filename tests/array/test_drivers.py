"""Tests for the row/column scan drivers."""

import numpy as np
import pytest

from repro.array.drivers import DriverTiming, ScanDrivers
from repro.array.scanner import ScanSchedule
from repro.core.sensing import RowSamplingMatrix


def _schedule(shape=(6, 6), m=18, seed=0):
    rng = np.random.default_rng(seed)
    phi = RowSamplingMatrix.random(shape[0] * shape[1], m, rng)
    return ScanSchedule.from_phi(phi, shape)


class TestDrive:
    def test_one_hot_column_per_cycle(self):
        drivers = ScanDrivers((6, 6))
        schedule = _schedule()
        for column_select, row_mask in drivers.drive(schedule):
            assert column_select.sum() == 1
            assert row_mask.dtype == bool

    def test_columns_walk_in_order(self):
        drivers = ScanDrivers((6, 6))
        schedule = _schedule()
        columns = [int(np.flatnonzero(sel)[0]) for sel, _ in drivers.drive(schedule)]
        assert columns == list(range(6))

    def test_shape_mismatch_rejected(self):
        drivers = ScanDrivers((4, 4))
        with pytest.raises(ValueError):
            list(drivers.drive(_schedule(shape=(6, 6))))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ScanDrivers((0, 4))


class TestTiming:
    def test_scan_time_scales_with_rows(self):
        schedule = _schedule()
        small = ScanDrivers((6, 6)).scan_time_s(schedule)
        # Same schedule, but the driver believes it has more rows to shift.
        assert small == pytest.approx(6 * 6 / 10_000.0)

    def test_faster_clock_shorter_scan(self):
        schedule = _schedule()
        slow = ScanDrivers((6, 6), DriverTiming(clock_hz=1_000.0))
        fast = ScanDrivers((6, 6), DriverTiming(clock_hz=20_000.0))
        assert fast.scan_time_s(schedule) < slow.scan_time_s(schedule)

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            DriverTiming(clock_hz=0.0)


class TestElectricalFeasibility:
    def test_feasible_at_paper_clock(self):
        drivers = ScanDrivers((8, 8), DriverTiming(clock_hz=10_000.0, vdd=3.0))
        assert drivers.electrically_feasible(stages=4)

    def test_infeasible_at_absurd_clock(self):
        drivers = ScanDrivers((8, 8), DriverTiming(clock_hz=500_000.0, vdd=3.0))
        assert not drivers.electrically_feasible(stages=4)
