"""Tests for the scan energy model."""

import numpy as np
import pytest

from repro.array.energy import EnergyModel
from repro.array.scanner import ScanSchedule
from repro.core.sensing import RowSamplingMatrix


def _schedule(shape=(16, 16), fraction=0.5, seed=0):
    rng = np.random.default_rng(seed)
    n = shape[0] * shape[1]
    phi = RowSamplingMatrix.random(n, int(fraction * n), rng)
    return ScanSchedule.from_phi(phi, shape)


class TestEnergyModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(adc_energy_j=0.0)
        with pytest.raises(ValueError):
            EnergyModel(clock_hz=0.0)
        with pytest.raises(ValueError):
            EnergyModel(static_power_w=-1.0)

    def test_breakdown_positive(self):
        energy = EnergyModel().scan_energy(_schedule())
        assert energy.adc > 0
        assert energy.drivers > 0
        assert energy.static > 0
        assert energy.total == pytest.approx(
            energy.adc + energy.drivers + energy.static
        )

    def test_adc_energy_proportional_to_m(self):
        model = EnergyModel()
        half = model.scan_energy(_schedule(fraction=0.5))
        quarter = model.scan_energy(_schedule(fraction=0.25))
        assert half.adc == pytest.approx(2.0 * quarter.adc, rel=0.05)

    def test_cs_scan_saves_energy(self):
        model = EnergyModel()
        ratio = model.energy_ratio(_schedule(fraction=0.5))
        assert ratio < 1.0

    def test_adc_dominated_regime_ratio_near_half(self):
        # When conversions dominate, the energy ratio approaches M/N.
        model = EnergyModel(adc_energy_j=1e-7, static_power_w=0.0)
        ratio = model.energy_ratio(_schedule(fraction=0.5))
        assert ratio == pytest.approx(0.5, abs=0.05)

    def test_driver_dominated_regime_saves_less(self):
        adc_heavy = EnergyModel(adc_energy_j=1e-7, static_power_w=0.0)
        driver_heavy = EnergyModel(
            adc_energy_j=1e-12, line_capacitance_f=1e-9, static_power_w=0.0
        )
        schedule = _schedule(fraction=0.5)
        assert driver_heavy.energy_ratio(schedule) > adc_heavy.energy_ratio(
            schedule
        )

    def test_full_readout_reads_everything(self):
        model = EnergyModel()
        full = model.full_readout_energy((16, 16))
        assert full.adc == pytest.approx(256 * model.adc_energy_j)
