"""Integration tests for the end-to-end flexible encoder."""

import numpy as np
import pytest

from repro.array import ActiveMatrix, FlexibleEncoder, ReadoutChain
from repro.core.dct import Dct2Basis
from repro.core.metrics import rmse
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix
from repro.core.solvers import solve
from repro.devices.defects import DefectMap
from repro.devices.variation import VariationModel


def _smooth(shape):
    r, c = np.mgrid[0:shape[0], 0:shape[1]]
    return 0.5 + 0.4 * np.sin(r / 4.0) * np.cos(c / 5.0)


class TestNormalizedScan:
    def test_ideal_chain_matches_phi_y(self):
        shape = (8, 8)
        frame = np.random.default_rng(0).random(shape)
        encoder = FlexibleEncoder(
            ActiveMatrix(shape),
            readout=ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=16),
        )
        rng = np.random.default_rng(1)
        phi = RowSamplingMatrix.random(64, 30, rng)
        output = encoder.scan_normalized(frame, phi)
        assert np.allclose(output.measurements, phi.apply(frame.ravel()), atol=1e-4)

    def test_scan_cycle_count(self):
        shape = (8, 8)
        encoder = FlexibleEncoder(ActiveMatrix(shape))
        phi = RowSamplingMatrix.random(64, 30, np.random.default_rng(2))
        output = encoder.scan_normalized(_smooth(shape), phi)
        assert output.schedule.num_cycles == 8
        assert output.scan_time_s > 0

    def test_decoding_the_encoder_output(self):
        shape = (16, 16)
        frame = _smooth(shape)
        encoder = FlexibleEncoder(ActiveMatrix(shape))
        rng = np.random.default_rng(3)
        phi = RowSamplingMatrix.random(256, 150, rng)
        output = encoder.scan_normalized(frame, phi)
        operator = SensingOperator(phi, Dct2Basis(shape))
        result = solve("fista", operator, output.measurements)
        recon = operator.synthesize(result.coefficients).reshape(shape)
        assert rmse(frame, recon) < 0.03

    def test_full_readout_baseline(self):
        shape = (8, 8)
        frame = _smooth(shape)
        encoder = FlexibleEncoder(
            ActiveMatrix(shape),
            readout=ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=16),
        )
        full = encoder.full_readout_normalized(frame)
        assert np.allclose(full, frame, atol=1e-4)


class TestMeasurementFamilies:
    """The scan path serves any registered measurement family."""

    def _ideal_encoder(self, shape):
        return FlexibleEncoder(
            ActiveMatrix(shape),
            readout=ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=16),
        )

    @pytest.mark.parametrize("family", ["dense_codes", "block_sampling"])
    def test_ideal_chain_matches_model_measure(self, family):
        from repro.core.measurement import get_measurement

        shape = (8, 8)
        frame = np.random.default_rng(0).random(shape)
        model = get_measurement(family)
        phi = model.draw(shape, 30, np.random.default_rng(1))
        output = self._ideal_encoder(shape).scan_normalized(frame, phi)
        # Summed readout accumulates per-pixel ADC quantisation, so the
        # tolerance scales with the code support (64 pixels here).
        assert np.allclose(
            output.measurements,
            model.measure(frame.ravel(), phi),
            atol=1e-3,
        )
        assert output.missing_reads == 0

    @pytest.mark.parametrize(
        "family", ["row_sampling", "dense_codes", "block_sampling"]
    )
    def test_stuck_line_chaos_perturbs_any_family(self, family):
        from repro.core.measurement import get_measurement
        from repro.resilience import StuckLineInjector, chaos

        shape = (8, 8)
        frame = np.random.default_rng(2).random(shape)
        model = get_measurement(family)
        phi = model.draw(shape, 40, np.random.default_rng(3))
        clean = self._ideal_encoder(shape).scan_normalized(frame, phi)
        injector = StuckLineInjector(
            rate=1.0, seed=4, mode="dead", max_lines=2
        )
        with chaos(injector):
            faulty = self._ideal_encoder(shape).scan_normalized(frame, phi)
        assert injector.stuck_rows  # the fault actually fired
        assert faulty.missing_reads > 0
        assert not np.allclose(faulty.measurements, clean.measurements)


class TestTemperatureScan:
    def _encoder(self, shape, defect_rate=0.0, seed=0):
        rng = np.random.default_rng(seed)
        defects = (
            DefectMap.sample(shape, defect_rate, rng) if defect_rate else None
        )
        array = ActiveMatrix(
            shape,
            variation=VariationModel(mobility_sigma=0.05, vth_sigma=0.02, seed=1),
            defect_map=defects,
        )
        _, high = array.current_bounds(20.0, 100.0)
        readout = ReadoutChain.for_current_range(high)
        return FlexibleEncoder(array, readout=readout), defects

    def test_calibrated_scan_accurate(self):
        shape = (12, 12)
        encoder, _ = self._encoder(shape)
        encoder.calibrate_temperature(20.0, 100.0)
        field = 30.0 + 40.0 * _smooth(shape)
        phi = RowSamplingMatrix.random(144, 144, np.random.default_rng(4))
        output = encoder.scan_temperature(field, phi)
        expected = (100.0 - field) / 80.0
        assert np.max(np.abs(output.measurements - expected.ravel())) < 0.05

    def test_uncalibrated_scan_needs_ranged_readout(self):
        shape = (8, 8)
        array = ActiveMatrix(shape)
        # Default readout saturates at these currents -> degenerate span.
        encoder = FlexibleEncoder(array)
        field = np.full(shape, 50.0)
        phi = RowSamplingMatrix.random(64, 10, np.random.default_rng(5))
        with pytest.raises(ValueError):
            encoder.scan_temperature(field, phi)

    def test_reconstruction_with_defects_excluded(self):
        shape = (16, 16)
        encoder, defects = self._encoder(shape, defect_rate=0.08, seed=6)
        encoder.calibrate_temperature(20.0, 100.0)
        field = 30.0 + 40.0 * _smooth(shape)
        exclude = np.flatnonzero(defects.mask().ravel())
        phi = RowSamplingMatrix.random(
            256, 140, np.random.default_rng(7), exclude=exclude
        )
        output = encoder.scan_temperature(field, phi)
        operator = SensingOperator(phi, Dct2Basis(shape))
        result = solve("fista", operator, output.measurements)
        normalized = operator.synthesize(result.coefficients).reshape(shape)
        recovered = 20.0 + (1.0 - normalized) * 80.0
        assert rmse(field, recovered) < 3.0  # degrees C

    def test_driver_shape_mismatch_rejected(self):
        from repro.array.drivers import ScanDrivers

        with pytest.raises(ValueError):
            FlexibleEncoder(ActiveMatrix((4, 4)), drivers=ScanDrivers((6, 6)))
