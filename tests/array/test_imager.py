"""Tests for the streaming imager."""

import numpy as np
import pytest

from repro.array import ActiveMatrix, FlexibleEncoder, ReadoutChain, StreamingImager
from repro.core.errors import SparseErrorModel
from repro.core.metrics import rmse


def _frames(count=5, shape=(16, 16)):
    r, c = np.mgrid[0:shape[0], 0:shape[1]]
    base = 0.5 + 0.35 * np.sin(r / 4.0) * np.cos(c / 5.0)
    return np.stack(
        [np.clip(base + 0.02 * np.sin(0.7 * k), 0, 1) for k in range(count)]
    )


def _encoder(shape=(16, 16)):
    return FlexibleEncoder(
        ActiveMatrix(shape),
        readout=ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=12),
    )


class TestCapture:
    def test_clean_stream_reconstructs(self):
        imager = StreamingImager(_encoder(), sampling_fraction=0.6, seed=0)
        records = imager.stream(_frames(3))
        assert len(records) == 3
        assert [r.index for r in records] == [0, 1, 2]
        for record in records:
            assert rmse(record.clean, record.reconstructed) < 0.03

    def test_transient_errors_tolerated(self):
        imager = StreamingImager(
            _encoder(),
            sampling_fraction=0.55,
            error_model=SparseErrorModel(transient_rate=0.05, seed=1),
            rpca_window=4,
            seed=0,
        )
        records = imager.stream(_frames(6))
        # later frames benefit from the RPCA history
        late = records[-1]
        assert rmse(late.clean, late.reconstructed) < rmse(
            late.clean, late.corrupted
        )

    def test_rpca_history_excludes_outliers(self):
        imager = StreamingImager(
            _encoder(),
            sampling_fraction=0.5,
            error_model=SparseErrorModel(transient_rate=0.08, seed=2),
            rpca_window=5,
            seed=1,
        )
        records = imager.stream(_frames(6))
        assert records[-1].excluded_pixels > 0
        assert records[0].excluded_pixels == 0  # no history yet

    def test_fresh_phi_each_frame(self):
        imager = StreamingImager(_encoder(), sampling_fraction=0.5, seed=3)
        frames = _frames(2)
        record_a = imager.capture(frames[0])
        record_b = imager.capture(frames[1])
        # different random masks -> reconstructions differ even for
        # identical inputs at equal quality
        assert not np.array_equal(record_a.reconstructed, record_b.reconstructed)

    def test_shape_checked(self):
        imager = StreamingImager(_encoder((8, 8)))
        with pytest.raises(ValueError):
            imager.capture(np.zeros((9, 9)))
        with pytest.raises(ValueError):
            imager.stream(np.zeros((8, 8)))

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingImager(_encoder(), sampling_fraction=0.0)
        with pytest.raises(ValueError):
            StreamingImager(_encoder(), rpca_window=-1)


class TestShiftRegisterClockSearch:
    def test_max_clock_above_paper_point(self):
        from repro.circuits.shift_register import ShiftRegister

        register = ShiftRegister(stages=4)
        ceiling = register.max_functional_clock(high_hz=2.0e5, resolution=0.3)
        assert ceiling > 10_000.0  # works at the paper's 10 kHz with margin
        assert ceiling < 2.0e5

    def test_validation(self):
        from repro.circuits.shift_register import ShiftRegister

        with pytest.raises(ValueError):
            ShiftRegister(stages=2).max_functional_clock(low_hz=0.0)


class TestResilientCapture:
    def test_records_carry_status_and_solver(self):
        from repro.resilience import ResiliencePolicy

        imager = StreamingImager(
            _encoder(), sampling_fraction=0.6,
            policy=ResiliencePolicy(), seed=0,
        )
        records = imager.stream(_frames(3))
        for record in records:
            assert record.status == "ok"
            assert record.solver == "fista"
            assert rmse(record.clean, record.reconstructed) < 0.03

    def test_without_policy_records_default_status(self):
        imager = StreamingImager(_encoder(), sampling_fraction=0.6, seed=0)
        record = imager.capture(_frames(1)[0])
        assert record.status == "ok"
        assert record.solver == "fista"

    def test_solver_fault_degrades_frame_not_stream(self):
        from repro.core.solvers import register_solve_hook, unregister_solve_hook
        from repro.resilience import ResiliencePolicy

        class KillFista:
            def before_solve(self, solver, operator, b):
                if solver == "fista":
                    raise RuntimeError("primary down")
                return b

        imager = StreamingImager(
            _encoder(), sampling_fraction=0.6,
            policy=ResiliencePolicy(), seed=0,
        )
        frames = _frames(4)
        clean_record = imager.capture(frames[0])
        # Kill fista for the next frame: the chain must move on.
        hook = KillFista()
        register_solve_hook(hook)
        try:
            faulted_record = imager.capture(frames[1])
        finally:
            unregister_solve_hook(hook)
        after_record = imager.capture(frames[2])
        assert clean_record.status == "ok"
        assert faulted_record.status == "degraded"
        assert faulted_record.solver == "bp_dr"
        assert np.all(np.isfinite(faulted_record.reconstructed))
        assert after_record.status == "ok"  # stream recovers immediately
        assert after_record.solver == "fista"

    def test_total_failure_serves_held_frame(self):
        from repro.resilience import ResiliencePolicy
        from repro.resilience.chaos import SolverExceptionInjector, chaos

        imager = StreamingImager(
            _encoder(), sampling_fraction=0.6,
            policy=ResiliencePolicy(), seed=0,
        )
        frames = _frames(2)
        good = imager.capture(frames[0])
        with chaos(SolverExceptionInjector(rate=1.0, seed=0)):
            held = imager.capture(frames[1])
        assert held.status == "fallback"
        assert held.solver is None
        # Zero-order hold: the delivered frame is the last good one.
        np.testing.assert_array_equal(held.reconstructed, good.reconstructed)

    def test_stream_uses_shared_engine_cache(self):
        from repro.core.engine import DecodeEngine, use_engine

        imager = StreamingImager(_encoder(), sampling_fraction=0.6, seed=0)
        with use_engine(DecodeEngine()) as engine:
            imager.stream(_frames(5))
            assert engine.cache.misses == 1
            assert engine.cache.hits == 4


class TestBatchedStream:
    def _records(self, batch_size=None, executor=None, policy=None):
        imager = StreamingImager(
            _encoder(), sampling_fraction=0.6, policy=policy, seed=0
        )
        return imager.stream(
            _frames(5), batch_size=batch_size, executor=executor
        )

    def test_batched_matches_unbatched_bitwise(self):
        reference = self._records()
        for batch_size in (2, 5, 8):
            records = self._records(batch_size=batch_size)
            assert [r.index for r in records] == [0, 1, 2, 3, 4]
            for ref, got in zip(reference, records):
                np.testing.assert_array_equal(
                    got.reconstructed, ref.reconstructed
                )
                np.testing.assert_array_equal(got.corrupted, ref.corrupted)
                assert got.status == ref.status

    @pytest.mark.parametrize("executor", ["serial", "thread", 2])
    def test_executor_backends_match_bitwise(self, executor):
        reference = self._records()
        records = self._records(batch_size=2, executor=executor)
        for ref, got in zip(reference, records):
            np.testing.assert_array_equal(got.reconstructed, ref.reconstructed)

    def test_policy_supervised_batches_stay_sequential_but_equal(self):
        from repro.resilience import ResiliencePolicy

        reference = self._records(policy=ResiliencePolicy())
        records = self._records(
            batch_size=3, executor="serial", policy=ResiliencePolicy()
        )
        for ref, got in zip(reference, records):
            np.testing.assert_array_equal(got.reconstructed, ref.reconstructed)
            assert got.status == ref.status

    def test_adaptive_batching_falls_back_to_per_frame(self):
        from repro import instrument
        from repro.resilience import AdaptivePolicy

        imager = StreamingImager(
            _encoder(), sampling_fraction=0.6,
            adaptive=AdaptivePolicy(), seed=0,
        )
        with instrument.profiled() as session:
            with pytest.warns(RuntimeWarning, match="adaptive"):
                records = imager.stream(_frames(3), batch_size=2)
        counters = session.report()["metrics"]["counters"]
        assert counters.get("imager.batch_adaptive_fallback") == 1

        # The graceful fallback decodes per frame: same results as an
        # identically seeded imager streamed without a batch size.
        reference = StreamingImager(
            _encoder(), sampling_fraction=0.6,
            adaptive=AdaptivePolicy(), seed=0,
        ).stream(_frames(3))
        assert [r.index for r in records] == [r.index for r in reference]
        for ref, got in zip(reference, records):
            np.testing.assert_array_equal(got.reconstructed, ref.reconstructed)
            assert got.status == ref.status

    def test_guard_holds_last_batched_frame(self):
        imager = StreamingImager(_encoder(), sampling_fraction=0.6, seed=0)
        records = imager.stream(_frames(4), batch_size=2, executor="serial")
        np.testing.assert_array_equal(
            imager._guard.fallback(records[-1].clean.shape),
            records[-1].reconstructed,
        )
