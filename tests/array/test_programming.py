"""Tests for driver bitstream programming (Phi_M -> shift registers)."""

import numpy as np
import pytest

from repro.array.programming import program_drivers, verify_row_program
from repro.array.scanner import ScanSchedule
from repro.core.sensing import RowSamplingMatrix


def _program(shape=(8, 8), m=28, seed=0):
    rng = np.random.default_rng(seed)
    phi = RowSamplingMatrix.random(shape[0] * shape[1], m, rng)
    return phi, program_drivers(phi, shape)


class TestProgramStructure:
    def test_one_word_per_column(self):
        _, program = _program()
        assert program.cycles == 8
        assert all(len(word) == 8 for word in program.row_words)

    def test_total_bits_accounting(self):
        _, program = _program()
        assert program.total_row_bits == 64

    def test_column_word_is_walking_one_seed(self):
        _, program = _program()
        assert program.column_word.sum() == 1
        assert program.column_word[0] == 1

    def test_register_contents_match_schedule(self):
        phi, program = _program(seed=1)
        schedule = ScanSchedule.from_phi(phi, program.array_shape)
        for cycle_index, cycle in enumerate(schedule.cycles):
            contents = program.register_contents(cycle_index)
            assert np.array_equal(contents, cycle.row_mask.astype(int))

    def test_programmed_bits_cover_phi(self):
        phi, program = _program(seed=2)
        rows, cols = program.array_shape
        recovered = []
        for cycle in range(program.cycles):
            contents = program.register_contents(cycle)
            for row in np.flatnonzero(contents):
                recovered.append(int(row) * cols + cycle)
        assert sorted(recovered) == sorted(phi.indices.tolist())


class TestGateLevelVerification:
    def test_row_word_survives_the_real_register(self):
        _, program = _program(seed=3)
        assert verify_row_program(program, cycle=0)
        assert verify_row_program(program, cycle=5)

    def test_verification_fails_at_excessive_clock(self):
        _, program = _program(seed=4)
        assert not verify_row_program(program, cycle=0, clock_hz=500_000.0)

    def test_all_zero_word(self):
        phi = RowSamplingMatrix(n=64, indices=np.array([9]))  # col 1 only
        program = program_drivers(phi, (8, 8))
        # column 0 has no samples: all-zero word still verifies
        assert verify_row_program(program, cycle=0)
