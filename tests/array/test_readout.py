"""Tests for the readout chain (amplifier + S/H + ADC)."""

import numpy as np
import pytest

from repro.array.readout import ReadoutChain


class TestValidation:
    def test_defaults_valid(self):
        ReadoutChain()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReadoutChain(transimpedance_ohm=0.0)
        with pytest.raises(ValueError):
            ReadoutChain(sh_droop=1.0)
        with pytest.raises(ValueError):
            ReadoutChain(adc_bits=0)
        with pytest.raises(ValueError):
            ReadoutChain(noise_sigma_v=-1.0)
        with pytest.raises(ValueError):
            ReadoutChain(full_scale_v=0.0)


class TestQuantization:
    def test_lsb_size(self):
        chain = ReadoutChain(adc_bits=10, full_scale_v=3.0)
        assert chain.lsb_v == pytest.approx(3.0 / 1024)

    def test_output_code_grid(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=4)
        codes = chain.convert_normalized(np.linspace(0, 1, 100))
        assert len(np.unique(codes)) <= 16
        assert np.all((codes >= 0) & (codes <= 1))

    def test_high_resolution_nearly_transparent(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=16)
        values = np.random.default_rng(0).random(50)
        codes = chain.convert_normalized(values)
        assert np.allclose(codes, values, atol=1e-4)

    def test_clipping_at_full_scale(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0)
        assert chain.convert_normalized(np.array([2.0]))[0] == 1.0
        assert chain.convert_normalized(np.array([-1.0]))[0] == 0.0


class TestCurrentPath:
    def test_monotone_in_current(self):
        chain = ReadoutChain.for_current_range(25e-6, noise_sigma_v=0.0)
        currents = np.linspace(1e-6, 25e-6, 10)
        codes = chain.convert_currents(currents)
        assert np.all(np.diff(codes) >= 0)

    def test_for_current_range_avoids_clipping(self):
        chain = ReadoutChain.for_current_range(25e-6, noise_sigma_v=0.0)
        top = chain.convert_currents(np.array([25e-6]))[0]
        assert 0.7 < top < 0.95

    def test_for_current_range_validation(self):
        with pytest.raises(ValueError):
            ReadoutChain.for_current_range(0.0)
        with pytest.raises(ValueError):
            ReadoutChain.for_current_range(1e-6, headroom=0.5)


class TestNoiseAndDroop:
    def test_noise_spreads_codes(self):
        chain = ReadoutChain(noise_sigma_v=0.05, adc_bits=12, seed=1)
        codes = chain.convert_normalized(np.full(2000, 0.5))
        assert codes.std() > 0.005

    def test_droop_lowers_reading(self):
        ideal = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0)
        droopy = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.1)
        value = np.array([0.8])
        assert droopy.convert_normalized(value)[0] < ideal.convert_normalized(value)[0]

    def test_seeded_noise_reproducible(self):
        a = ReadoutChain(noise_sigma_v=0.01, seed=3).convert_normalized(
            np.full(10, 0.5)
        )
        b = ReadoutChain(noise_sigma_v=0.01, seed=3).convert_normalized(
            np.full(10, 0.5)
        )
        assert np.array_equal(a, b)
