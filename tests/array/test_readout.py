"""Tests for the readout chain (amplifier + S/H + ADC)."""

import numpy as np
import pytest

from repro.array.readout import ReadoutChain, detect_stuck_lines


class TestValidation:
    def test_defaults_valid(self):
        ReadoutChain()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReadoutChain(transimpedance_ohm=0.0)
        with pytest.raises(ValueError):
            ReadoutChain(sh_droop=1.0)
        with pytest.raises(ValueError):
            ReadoutChain(adc_bits=0)
        with pytest.raises(ValueError):
            ReadoutChain(noise_sigma_v=-1.0)
        with pytest.raises(ValueError):
            ReadoutChain(full_scale_v=0.0)


class TestQuantization:
    def test_lsb_size(self):
        chain = ReadoutChain(adc_bits=10, full_scale_v=3.0)
        assert chain.lsb_v == pytest.approx(3.0 / 1024)

    def test_output_code_grid(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=4)
        codes = chain.convert_normalized(np.linspace(0, 1, 100))
        assert len(np.unique(codes)) <= 16
        assert np.all((codes >= 0) & (codes <= 1))

    def test_high_resolution_nearly_transparent(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=16)
        values = np.random.default_rng(0).random(50)
        codes = chain.convert_normalized(values)
        assert np.allclose(codes, values, atol=1e-4)

    def test_clipping_at_full_scale(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0)
        assert chain.convert_normalized(np.array([2.0]))[0] == 1.0
        assert chain.convert_normalized(np.array([-1.0]))[0] == 0.0


class TestCurrentPath:
    def test_monotone_in_current(self):
        chain = ReadoutChain.for_current_range(25e-6, noise_sigma_v=0.0)
        currents = np.linspace(1e-6, 25e-6, 10)
        codes = chain.convert_currents(currents)
        assert np.all(np.diff(codes) >= 0)

    def test_for_current_range_avoids_clipping(self):
        chain = ReadoutChain.for_current_range(25e-6, noise_sigma_v=0.0)
        top = chain.convert_currents(np.array([25e-6]))[0]
        assert 0.7 < top < 0.95

    def test_for_current_range_validation(self):
        with pytest.raises(ValueError):
            ReadoutChain.for_current_range(0.0)
        with pytest.raises(ValueError):
            ReadoutChain.for_current_range(1e-6, headroom=0.5)


class TestNoiseAndDroop:
    def test_noise_spreads_codes(self):
        chain = ReadoutChain(noise_sigma_v=0.05, adc_bits=12, seed=1)
        codes = chain.convert_normalized(np.full(2000, 0.5))
        assert codes.std() > 0.005

    def test_droop_lowers_reading(self):
        ideal = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0)
        droopy = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.1)
        value = np.array([0.8])
        assert droopy.convert_normalized(value)[0] < ideal.convert_normalized(value)[0]

    def test_seeded_noise_reproducible(self):
        a = ReadoutChain(noise_sigma_v=0.01, seed=3).convert_normalized(
            np.full(10, 0.5)
        )
        b = ReadoutChain(noise_sigma_v=0.01, seed=3).convert_normalized(
            np.full(10, 0.5)
        )
        assert np.array_equal(a, b)


class TestNonFiniteGuards:
    def test_nan_currents_clamped_to_zero_code(self):
        chain = ReadoutChain(noise_sigma_v=0.0)
        codes = chain.convert_currents(np.array([np.nan, np.inf, -np.inf]))
        assert np.all(np.isfinite(codes))
        assert codes[0] == 0.0

    def test_nonfinite_counted(self):
        from repro import instrument

        chain = ReadoutChain(noise_sigma_v=0.0)
        with instrument.profiled() as session:
            chain.convert_normalized(np.array([0.5, np.nan]))
        counters = session.report()["metrics"]["counters"]
        assert counters.get("readout.nonfinite") == 1

    def test_saturation_counted(self):
        from repro import instrument

        chain = ReadoutChain(noise_sigma_v=0.0)
        with instrument.profiled() as session:
            chain.convert_normalized(np.array([-0.2, 0.5, 1.5]))
        counters = session.report()["metrics"]["counters"]
        assert counters.get("readout.saturated_low") == 1
        assert counters.get("readout.saturated_high") == 1


class TestDetectStuckLines:
    def test_clean_frame_all_false(self):
        codes = np.full((6, 6), 0.5)
        assert not detect_stuck_lines(codes).any()

    def test_stuck_row_flagged(self):
        codes = np.full((6, 6), 0.5)
        codes[2, :] = 1.0
        mask = detect_stuck_lines(codes)
        assert mask[2, :].all()
        assert mask.sum() == 6

    def test_stuck_column_flagged(self):
        codes = np.full((6, 6), 0.5)
        codes[:, 4] = 0.0
        mask = detect_stuck_lines(codes)
        assert mask[:, 4].all()
        assert mask.sum() == 6

    def test_mixed_rails_count_as_stuck(self):
        codes = np.full((4, 4), 0.5)
        codes[1, :2] = 0.0
        codes[1, 2:] = 1.0
        assert detect_stuck_lines(codes)[1, :].all()

    def test_isolated_stuck_pixel_not_flagged(self):
        codes = np.full((6, 6), 0.5)
        codes[3, 3] = 1.0
        assert not detect_stuck_lines(codes).any()

    def test_row_and_column_union(self):
        codes = np.full((5, 5), 0.5)
        codes[0, :] = 1.0
        codes[:, 0] = 0.0
        codes[0, 0] = 1.0
        mask = detect_stuck_lines(codes)
        assert mask[0, :].all() and mask[:, 0].all()
        assert mask.sum() == 9

    def test_mask_feeds_exclusion_decode(self):
        from repro.core import sample_and_reconstruct

        r, c = np.mgrid[0:10, 0:10]
        frame = 0.5 + 0.3 * np.sin(r / 3.0) * np.cos(c / 4.0)
        readout = frame.copy()
        readout[4, :] = 1.0  # broken line
        mask = detect_stuck_lines(readout)
        recon = sample_and_reconstruct(
            readout, 0.6, np.random.default_rng(0), exclude_mask=mask
        )
        assert recon.shape == frame.shape

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            detect_stuck_lines(np.zeros(16))

    def test_all_lines_stuck(self):
        mask = detect_stuck_lines(np.zeros((5, 5)))
        assert mask.all()
        mask = detect_stuck_lines(np.ones((5, 5)))
        assert mask.all()

    def test_single_row_frame(self):
        healthy = np.full((1, 6), 0.5)
        assert not detect_stuck_lines(healthy).any()
        # A single healthy row still exposes stuck *columns*.
        healthy[0, 2] = 1.0
        assert detect_stuck_lines(healthy)[0, 2]
        # And a fully railed single row is a stuck row.
        assert detect_stuck_lines(np.ones((1, 6))).all()

    def test_single_column_frame(self):
        healthy = np.full((6, 1), 0.5)
        assert not detect_stuck_lines(healthy).any()
        assert detect_stuck_lines(np.zeros((6, 1))).all()

    def test_nan_line_counts_as_stuck(self):
        codes = np.full((6, 6), 0.5)
        codes[3, :] = np.nan
        mask = detect_stuck_lines(codes)
        assert mask[3, :].all()
        assert mask.sum() == 6

    def test_all_nan_frame_fully_stuck(self):
        assert detect_stuck_lines(np.full((4, 4), np.nan)).all()

    def test_mixed_nan_and_rail_line(self):
        codes = np.full((4, 4), 0.5)
        codes[:, 1] = [np.nan, 0.0, 1.0, np.inf]
        assert detect_stuck_lines(codes)[:, 1].all()

    def test_custom_rail_values(self):
        codes = np.full((4, 4), 100.0)
        codes[2, :] = 255.0
        mask = detect_stuck_lines(codes, low=0.0, high=255.0)
        assert mask[2, :].all()
        assert mask.sum() == 4
