"""Tests for the sqrt(N)-cycle scan scheduler (Fig. 4 / Sec. 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array.scanner import ScanSchedule
from repro.core.sensing import RowSamplingMatrix


def _schedule(shape=(6, 5), m=12, seed=0):
    rng = np.random.default_rng(seed)
    n = shape[0] * shape[1]
    phi = RowSamplingMatrix.random(n, m, rng)
    return phi, ScanSchedule.from_phi(phi, shape)


class TestSchedule:
    def test_cycle_count_is_column_count(self):
        _, schedule = _schedule(shape=(8, 5))
        assert schedule.num_cycles == 5

    def test_total_reads_is_m(self):
        phi, schedule = _schedule(m=17)
        assert schedule.total_reads == 17

    def test_pixel_order_covers_phi_indices(self):
        phi, schedule = _schedule(m=14, seed=1)
        order = schedule.pixel_order()
        assert sorted(order.tolist()) == sorted(phi.indices.tolist())

    def test_acquisition_is_column_major(self):
        phi, schedule = _schedule(m=10, seed=2)
        order = schedule.pixel_order()
        cols = order % schedule.array_shape[1]
        assert np.all(np.diff(cols) >= 0)

    def test_square_array_sqrt_n_cycles(self):
        # Sec. 4.1: a square array scans in sqrt(N) cycles.
        _, schedule = _schedule(shape=(16, 16), m=100)
        assert schedule.num_cycles == 16  # sqrt(256)


class TestCommunicationCost:
    def test_half_sampling_half_cost(self):
        _, schedule = _schedule(shape=(10, 10), m=50)
        cost = schedule.communication_cost()
        assert cost["cost_ratio"] == pytest.approx(0.5)
        assert cost["adc_conversions"] == 50
        assert cost["baseline_conversions"] == 100

    def test_custom_baseline(self):
        _, schedule = _schedule(shape=(10, 10), m=25)
        cost = schedule.communication_cost(baseline_reads=50)
        assert cost["cost_ratio"] == pytest.approx(0.5)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    data=st.data(),
)
def test_property_every_sample_read_exactly_once(seed, data):
    """The scan reads each sampled pixel exactly once, in one cycle."""
    rows = data.draw(st.integers(min_value=2, max_value=10))
    cols = data.draw(st.integers(min_value=2, max_value=10))
    n = rows * cols
    m = data.draw(st.integers(min_value=1, max_value=n))
    rng = np.random.default_rng(seed)
    phi = RowSamplingMatrix.random(n, m, rng)
    schedule = ScanSchedule.from_phi(phi, (rows, cols))
    order = schedule.pixel_order()
    assert len(order) == m
    assert len(np.unique(order)) == m
    assert schedule.num_cycles == cols
