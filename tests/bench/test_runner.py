"""Cell runner: metrics, determinism, suite assembly, the driver CLI."""

import pytest

from repro.bench import (
    get_workload,
    run_cell,
    run_suite,
    validate_bench,
)
from repro.bench.__main__ import main
from repro.bench.runner import calibrate

TINY = "thermal-16x16-s50-f00"
TINY_FAULTED = "thermal-16x16-s50-f20"


class TestCalibrate:
    def test_positive_and_repeatable_scale(self):
        first = calibrate(repeats=1, loops=2)
        second = calibrate(repeats=1, loops=2)
        assert first > 0 and second > 0
        # Same host, same workload: within an order of magnitude.
        assert 0.1 < first / second < 10.0


class TestRunCell:
    def test_engine_cell_metrics(self):
        cell = run_cell(get_workload(TINY), "serial", base_seed=0)
        metrics = cell["metrics"]
        assert cell["workload"] == TINY and cell["route"] == "serial"
        assert metrics["wall_s"] > 0
        assert metrics["calibration_s"] > 0  # contemporaneous pairing
        assert metrics["ms_per_frame"] == pytest.approx(
            metrics["wall_s"] / cell["frames"] * 1e3
        )
        assert 0.0 < metrics["rmse"] < 0.2  # reconstruction is sane
        assert metrics["delivered"] == 1.0
        assert metrics["ok_fraction"] == 1.0
        # Warm-up miss, then hits: streaming cells sit near 1.0.
        assert metrics["cache_hit_rate"] > 0.5
        assert metrics["speedup_vs_serial"] is None

    def test_supervised_cell_under_faults(self):
        cell = run_cell(get_workload(TINY_FAULTED), "resilient", base_seed=0)
        assert cell["metrics"]["delivered"] == 1.0  # never drops a frame
        assert cell["extras"]["statuses"]  # audit trail present
        assert cell["fault_rate"] == 0.20

    def test_journal_route_matches_resilient_bit_for_bit(self):
        """The journalled route must change only the bookkeeping: its
        reconstructions (and so rmse) are identical to ``resilient`` on
        the same workload and seed, isolating journal overhead."""
        plain = run_cell(get_workload(TINY_FAULTED), "resilient", base_seed=0)
        journalled = run_cell(
            get_workload(TINY_FAULTED), "resilient_journal", base_seed=0
        )
        assert journalled["metrics"]["rmse"] == plain["metrics"]["rmse"]
        assert journalled["metrics"]["delivered"] == 1.0
        assert journalled["extras"]["faults_seen"] == (
            plain["extras"]["faults_seen"]
        )

    def test_journal_route_reports_journal_cost(self):
        cell = run_cell(
            get_workload(TINY_FAULTED), "resilient_journal", base_seed=0
        )
        extras = cell["extras"]
        assert extras["journalled"] is True
        # One admit + one verdict per frame.
        assert extras["journal_records"] == 2 * cell["frames"]
        assert extras["journal_bytes"] > 0
        # The overhead fraction the CI crash-smoke job gates at 10%.
        assert 0.0 < extras["journal_wall_s"] < cell["metrics"]["wall_s"]

    def test_rmse_is_deterministic_across_runs(self):
        first = run_cell(get_workload(TINY), "serial", base_seed=3)
        second = run_cell(get_workload(TINY), "serial", base_seed=3)
        assert first["metrics"]["rmse"] == second["metrics"]["rmse"]
        third = run_cell(get_workload(TINY), "serial", base_seed=4)
        assert first["metrics"]["rmse"] != third["metrics"]["rmse"]

    def test_engine_routes_agree_bit_for_bit(self):
        serial = run_cell(get_workload(TINY), "serial", base_seed=0)
        batch = run_cell(get_workload(TINY), "thread", base_seed=0)
        assert serial["metrics"]["rmse"] == batch["metrics"]["rmse"]

    def test_instrumented_mode_attaches_counters(self):
        cell = run_cell(
            get_workload(TINY), "serial", base_seed=0, instrumented=True
        )
        assert cell["counters"].get("decode.calls") == cell["frames"]
        assert any(k.startswith("engine.cache.") for k in cell["counters"])


class TestRunSuite:
    def test_tiny_suite_document(self):
        doc = run_suite("tiny", bench_id=42, seed=0)
        assert validate_bench(doc) == []
        assert doc["bench_id"] == 42
        assert doc["suite"] == "tiny"
        assert len(doc["cells"]) == 3
        by_route = {
            (c["workload"], c["route"]): c["metrics"] for c in doc["cells"]
        }
        shared = by_route[(TINY, "batch_shared")]
        assert shared["speedup_vs_serial"] is not None
        assert by_route[(TINY, "serial")]["speedup_vs_serial"] is None

    def test_progress_callback(self):
        lines = []
        run_suite("tiny", bench_id=1, seed=0, progress=lines.append)
        assert len(lines) == 3 and "[1/3]" in lines[0]


class TestDriverCli:
    def test_suite_run_emits_valid_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_6.json"
        code = main(
            ["--suite", "tiny", "--bench-id", "6",
             "--output", str(out), "--root", str(tmp_path), "--quiet"]
        )
        assert code == 0
        assert main(["--validate", str(out)]) == 0

    def test_default_output_uses_next_free_id(self, tmp_path, capsys):
        code = main(["--suite", "tiny", "--root", str(tmp_path), "--quiet"])
        assert code == 0
        assert (tmp_path / "BENCH_1.json").exists()
