"""BENCH_*.json schema: build, validate, round-trip, trajectory files."""

import json

import pytest

from repro.bench import (
    SCHEMA,
    bench_filename,
    build_bench,
    list_bench_files,
    load_bench,
    next_bench_id,
    validate_bench,
    write_bench,
)


def make_cell(workload="thermal-32x32-s50-f00", route="serial", **metrics):
    base = {
        "wall_s": 0.1,
        "ms_per_frame": 25.0,
        "rmse": 0.02,
        "delivered": 1.0,
        "ok_fraction": 1.0,
        "cache_hit_rate": 0.8,
        "speedup_vs_serial": None,
    }
    base.update(metrics)
    return {
        "workload": workload,
        "route": route,
        "dataset": workload.split("-")[0],
        "shape": [32, 32],
        "sampling_fraction": 0.5,
        "fault_rate": 0.0,
        "frames": 4,
        "solver": "fista",
        "tier": 1,
        "metrics": base,
    }


def make_doc(bench_id=1, cells=None, calibration_s=0.01, suite="smoke"):
    return build_bench(
        bench_id=bench_id,
        suite=suite,
        seed=0,
        calibration_s=calibration_s,
        cells=cells if cells is not None else [make_cell()],
    )


class TestBuildAndValidate:
    def test_built_documents_are_valid(self):
        doc = make_doc()
        assert doc["schema"] == SCHEMA
        assert validate_bench(doc) == []

    def test_numpy_values_are_coerced(self):
        np = pytest.importorskip("numpy")
        cell = make_cell(wall_s=np.float64(0.1), rmse=np.float32(0.02))
        cell["shape"] = [np.int64(32), np.int64(32)]
        doc = make_doc(cells=[cell])
        assert validate_bench(doc) == []
        json.dumps(doc)  # must not raise

    def test_meta_is_carried(self):
        doc = build_bench(1, "smoke", 0, 0.01, [make_cell()], meta={"sha": "x"})
        assert doc["meta"] == {"sha": "x"}

    @pytest.mark.parametrize("key", ["schema", "bench_id", "cells", "host"])
    def test_missing_top_level_key(self, key):
        doc = make_doc()
        del doc[key]
        assert any(key in p for p in validate_bench(doc))

    def test_wrong_schema_tag(self):
        doc = make_doc()
        doc["schema"] = "repro.bench/v0"
        assert any("schema" in p for p in validate_bench(doc))

    def test_nonpositive_calibration(self):
        doc = make_doc()
        doc["calibration_s"] = 0.0
        assert any("calibration_s" in p for p in validate_bench(doc))

    def test_missing_cell_key_and_metric(self):
        cell = make_cell()
        del cell["solver"]
        del cell["metrics"]["rmse"]
        problems = validate_bench(make_doc(cells=[cell]))
        assert any("solver" in p for p in problems)
        assert any("rmse" in p for p in problems)

    def test_duplicate_cells_flagged(self):
        doc = make_doc(cells=[make_cell(), make_cell()])
        assert any("duplicates" in p for p in validate_bench(doc))

    def test_non_dict_document(self):
        assert validate_bench([1, 2]) != []


class TestFiles:
    def test_round_trip(self, tmp_path):
        doc = make_doc(bench_id=6)
        path = tmp_path / bench_filename(6)
        write_bench(doc, path)
        assert load_bench(path) == json.loads(path.read_text())

    def test_write_refuses_invalid(self, tmp_path):
        doc = make_doc()
        doc["cells"] = "not a list"
        with pytest.raises(ValueError, match="invalid benchmark document"):
            write_bench(doc, tmp_path / "BENCH_1.json")

    def test_load_rejects_corrupt(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ValueError, match="invalid benchmark document"):
            load_bench(path)

    def test_listing_ignores_non_trajectory_files(self, tmp_path):
        for bench_id in (3, 1, 10):
            write_bench(make_doc(bench_id=bench_id),
                        tmp_path / bench_filename(bench_id))
        # Instrument dumps and strays must not leak into the trajectory.
        (tmp_path / "BENCH_test_fig6a.instrument.json").write_text("{}")
        (tmp_path / "BENCH_.json").write_text("{}")
        (tmp_path / "notes.json").write_text("{}")
        ids = [bench_id for bench_id, _ in list_bench_files(tmp_path)]
        assert ids == [1, 3, 10]
        assert next_bench_id(tmp_path) == 11

    def test_next_id_on_empty_root(self, tmp_path):
        assert next_bench_id(tmp_path) == 1
        assert next_bench_id(tmp_path / "missing") == 1
