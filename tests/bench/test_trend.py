"""Trend module: deltas across a synthetic history, gate exit codes."""

import pytest

from repro.bench import (
    bench_filename,
    build_bench,
    check_regressions,
    compute_deltas,
    load_history,
    render_markdown,
    trajectory_markdown,
    write_bench,
)
from repro.bench.__main__ import main
from repro.bench.trend import normalized_wall

from .test_schema import make_cell, make_doc


def doc_with(bench_id, wall_s, rmse=0.02, calibration_s=0.01, route="serial"):
    cell = make_cell(route=route, wall_s=wall_s, rmse=rmse)
    return make_doc(
        bench_id=bench_id, cells=[cell], calibration_s=calibration_s
    )


class TestDeltas:
    def test_flat_history(self):
        deltas = compute_deltas(doc_with(1, 0.1), doc_with(2, 0.1))
        (delta,) = deltas
        assert delta["status"] == "common"
        assert delta["wall_rel"] == pytest.approx(0.0)
        assert delta["rmse_rel"] == pytest.approx(0.0)

    def test_normalised_wall_ignores_machine_speed(self):
        # Same machine-independent cost: 2x the wall on a 2x-slower host.
        prev = doc_with(1, 0.1, calibration_s=0.01)
        curr = doc_with(2, 0.2, calibration_s=0.02)
        (delta,) = compute_deltas(prev, curr)
        assert delta["wall_rel"] == pytest.approx(0.0)
        assert normalized_wall(prev["cells"][0], prev) == pytest.approx(10.0)

    def test_per_cell_calibration_preferred(self):
        # 3x the wall on a host whose contemporaneous calibration also
        # reads 3x: same normalised cost, once the cell-level value is
        # honoured over the (unchanged) document-level constant.
        prev = doc_with(1, 0.1, calibration_s=0.01)
        curr = doc_with(2, 0.3, calibration_s=0.01)
        curr["cells"][0]["metrics"]["calibration_s"] = 0.03
        (delta,) = compute_deltas(prev, curr)
        assert delta["wall_rel"] == pytest.approx(0.0)

    def test_new_and_dropped_cells(self):
        prev = make_doc(bench_id=1, cells=[make_cell(route="serial")])
        curr = make_doc(bench_id=2, cells=[make_cell(route="thread")])
        statuses = {
            (d["route"], d["status"]) for d in compute_deltas(prev, curr)
        }
        assert statuses == {("serial", "dropped"), ("thread", "new")}

    def test_three_file_trajectory(self, tmp_path):
        for bench_id, wall in ((1, 0.10), (2, 0.09), (3, 0.11)):
            write_bench(
                doc_with(bench_id, wall), tmp_path / bench_filename(bench_id)
            )
        history = load_history(tmp_path)
        assert [doc["bench_id"] for doc in history] == [1, 2, 3]
        improve = compute_deltas(history[0], history[1])[0]
        regress = compute_deltas(history[1], history[2])[0]
        assert improve["wall_rel"] < 0 < regress["wall_rel"]
        table = trajectory_markdown(history, "ms_per_frame")
        assert "PR 1" in table and "PR 3" in table


class TestGate:
    def test_flat_passes(self):
        assert check_regressions(doc_with(1, 0.1), doc_with(2, 0.1)) == []

    def test_improvement_passes(self):
        assert check_regressions(doc_with(1, 0.1), doc_with(2, 0.05)) == []

    def test_wall_regression_fails(self):
        problems = check_regressions(doc_with(1, 0.1), doc_with(2, 0.115))
        assert problems and "wall-clock" in problems[0]

    def test_slip_inside_threshold_passes(self):
        assert check_regressions(doc_with(1, 0.1), doc_with(2, 0.105)) == []

    def test_rmse_regression_fails(self):
        problems = check_regressions(
            doc_with(1, 0.1, rmse=0.02), doc_with(2, 0.1, rmse=0.03)
        )
        assert problems and "RMSE" in problems[0]

    def test_dropped_tier1_cell_fails(self):
        prev = make_doc(bench_id=1, cells=[make_cell(route="serial")])
        curr = make_doc(bench_id=2, cells=[make_cell(route="thread")])
        problems = check_regressions(prev, curr)
        assert any("dropped" in p for p in problems)

    def test_tier2_cells_are_not_gated(self):
        prev = make_doc(bench_id=1, cells=[make_cell()])
        curr = make_doc(bench_id=2, cells=[make_cell(wall_s=1.0)])
        prev["cells"][0]["tier"] = curr["cells"][0]["tier"] = 2
        assert check_regressions(prev, curr) == []

    def test_threshold_is_configurable(self):
        prev, curr = doc_with(1, 0.1), doc_with(2, 0.13)
        assert check_regressions(prev, curr, max_wall_slip=0.5) == []
        assert check_regressions(prev, curr, max_wall_slip=0.1) != []


class TestReport:
    def test_report_renders_deltas_and_trajectory(self, tmp_path):
        for bench_id, wall in ((1, 0.10), (2, 0.09)):
            write_bench(
                doc_with(bench_id, wall), tmp_path / bench_filename(bench_id)
            )
        text = render_markdown(load_history(tmp_path))
        assert "## Runs" in text
        assert "Latest deltas (PR 1 -> PR 2)" in text
        assert "No tier-1 regressions" in text
        assert "ms per frame" in text

    def test_report_flags_regressions(self):
        text = render_markdown([doc_with(1, 0.1), doc_with(2, 0.2)])
        assert "REGRESSIONS" in text

    def test_empty_history(self):
        assert "No `BENCH_*.json`" in render_markdown([])
        assert "no trajectory entries" in trajectory_markdown([])


class TestCliExitCodes:
    def _write(self, tmp_path, bench_id, wall):
        write_bench(
            doc_with(bench_id, wall), tmp_path / bench_filename(bench_id)
        )

    def test_gate_flat_exits_zero(self, tmp_path, capsys):
        self._write(tmp_path, 1, 0.1)
        self._write(tmp_path, 2, 0.1)
        assert main(["--trend", "--gate", "--root", str(tmp_path)]) == 0

    def test_gate_improvement_exits_zero(self, tmp_path, capsys):
        self._write(tmp_path, 1, 0.1)
        self._write(tmp_path, 2, 0.08)
        assert main(["--trend", "--gate", "--root", str(tmp_path)]) == 0

    def test_gate_regression_exits_nonzero(self, tmp_path, capsys):
        self._write(tmp_path, 1, 0.1)
        self._write(tmp_path, 2, 0.15)  # >10% wall-clock slip injected
        assert main(["--trend", "--gate", "--root", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_gate_single_entry_exits_zero(self, tmp_path, capsys):
        self._write(tmp_path, 1, 0.1)
        assert main(["--trend", "--gate", "--root", str(tmp_path)]) == 0

    def test_trend_without_gate_never_fails(self, tmp_path, capsys):
        self._write(tmp_path, 1, 0.1)
        self._write(tmp_path, 2, 0.5)
        assert main(["--trend", "--root", str(tmp_path)]) == 0

    def test_validate_good_and_bad(self, tmp_path, capsys):
        self._write(tmp_path, 1, 0.1)
        good = tmp_path / bench_filename(1)
        assert main(["--validate", str(good)]) == 0
        bad = tmp_path / "broken.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["--validate", str(bad)]) == 1
        assert main(["--validate", str(tmp_path / "missing.json")]) == 1

    def test_corrupt_history_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "BENCH_1.json").write_text('{"schema": "nope"}')
        assert main(["--trend", "--root", str(tmp_path)]) == 1

    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "batch_shared" in out
