"""Workload/route registry integrity and suite expansion."""

import numpy as np
import pytest

from repro.bench import (
    Workload,
    cell_seed,
    dataset_names,
    get_route,
    get_workload,
    make_frames,
    register_workload,
    route_names,
    suite_cells,
    suite_names,
    workload_names,
)
from repro.bench.workloads import _WORKLOADS


class TestRegistry:
    def test_dataset_families(self):
        assert dataset_names() == ("tactile", "thermal", "ultrasound")

    def test_matrix_covers_the_issue_axes(self):
        workloads = [get_workload(name) for name in workload_names()]
        shapes = {w.shape for w in workloads}
        assert (32, 32) in shapes and (128, 128) in shapes
        assert {w.fault_rate for w in workloads} >= {0.0, 0.10, 0.20}
        assert len({w.sampling_fraction for w in workloads}) >= 2
        assert {w.dataset for w in workloads} == set(dataset_names())

    def test_names_follow_the_convention(self):
        w = get_workload("thermal-32x32-s50-f10")
        assert w.shape == (32, 32)
        assert w.sampling_fraction == 0.5
        assert w.fault_rate == 0.10

    def test_tier1_cells_exist(self):
        tiers = [get_workload(n).tier for n in workload_names()]
        assert tiers.count(1) >= 4

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nope")

    def test_register_and_replace(self):
        original = dict(_WORKLOADS)
        try:
            w = Workload(
                name="custom-16x16-s50-f00",
                dataset="thermal",
                shape=(16, 16),
                sampling_fraction=0.5,
            )
            register_workload(w)
            assert get_workload(w.name) is w
        finally:
            _WORKLOADS.clear()
            _WORKLOADS.update(original)

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="shape"):
            Workload("x", "thermal", (4, 4), 0.5)
        with pytest.raises(ValueError, match="sampling_fraction"):
            Workload("x", "thermal", (16, 16), 0.0)
        with pytest.raises(ValueError, match="fault_rate"):
            Workload("x", "thermal", (16, 16), 0.5, fault_rate=2.0)
        with pytest.raises(ValueError, match="unknown dataset"):
            Workload("x", "seismic", (16, 16), 0.5)


class TestSuites:
    def test_suite_names(self):
        assert set(suite_names()) == {"tiny", "smoke", "full"}

    def test_every_suite_resolves(self):
        for suite in suite_names():
            cells = suite_cells(suite)
            assert cells
            for workload, route_name in cells:
                route = get_route(route_name)
                assert route.supports(workload), (
                    f"{suite}: {workload.name} x {route_name} pairs a "
                    "faulted workload with an unsupervised route"
                )

    def test_smoke_covers_the_tier1_set(self):
        cells = suite_cells("smoke")
        # The gated core is tier 1; the operator-layer cells (dense
        # control arm, batch supervision, 128^2/256^2 implicit
        # coverage) ride along as tier 2.  Tier-3 test cells never
        # enter the trajectory.
        assert all(w.tier in (1, 2) for w, _ in cells)
        tier1 = [(w, r) for w, r in cells if w.tier == 1]
        datasets = {w.dataset for w, _ in tier1}
        assert datasets == set(dataset_names())
        routes = {r for _, r in tier1}
        assert {"serial", "batch_shared", "resilient", "adaptive"} <= routes
        extra_routes = {r for _, r in cells}
        assert {
            "serial_dense",
            "resilient_batch",
            "resilient_journal",
        } <= extra_routes

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError, match="unknown suite"):
            suite_cells("nightly")


class TestDeterminism:
    def test_cell_seed_is_stable_and_distinct(self):
        a = cell_seed(0, "thermal-32x32-s50-f00")
        assert a == cell_seed(0, "thermal-32x32-s50-f00")
        assert a != cell_seed(0, "tactile-32x32-s50-f00")
        assert a != cell_seed(1, "thermal-32x32-s50-f00")

    def test_make_frames_deterministic(self):
        w = get_workload("thermal-16x16-s50-f00")
        first = make_frames(w, 7)
        second = make_frames(w, 7)
        assert first.shape == (w.frames, 16, 16)
        np.testing.assert_array_equal(first, second)
        assert not np.array_equal(first, make_frames(w, 8))


class TestRoutes:
    def test_route_vocabulary(self):
        assert set(route_names()) == {
            "serial",
            "serial_dense",
            "thread",
            "process",
            "batch_shared",
            "resilient",
            "resilient_batch",
            "resilient_journal",
            "adaptive",
        }

    def test_engine_routes_refuse_faulted_workloads(self):
        faulted = get_workload("thermal-16x16-s50-f20")
        frames = make_frames(faulted, 0)[:1]
        for name in ("serial", "thread", "process", "batch_shared"):
            route = get_route(name)
            assert not route.supports(faulted)
            with pytest.raises(ValueError, match="supervised"):
                route.run(frames, faulted, 0)
        for name in ("resilient", "adaptive"):
            assert get_route(name).supports(faulted)

    def test_unknown_route_raises(self):
        with pytest.raises(KeyError, match="unknown route"):
            get_route("quantum")
