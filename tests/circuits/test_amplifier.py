"""Tests for the self-biased amplifier (Fig. 5e)."""

import pytest

from repro.circuits.amplifier import AmplifierDesign, SelfBiasedAmplifier


class TestDesign:
    def test_defaults_valid(self):
        AmplifierDesign()

    def test_validation(self):
        with pytest.raises(ValueError):
            AmplifierDesign(drive_width_um=0.0)
        with pytest.raises(ValueError):
            AmplifierDesign(coupling_c_farads=0.0)
        with pytest.raises(ValueError):
            AmplifierDesign(vss=1.0)

    def test_paper_dimensions(self):
        design = AmplifierDesign()
        assert design.length_um == 10.0
        assert design.coupling_c_farads == pytest.approx(1e-9)
        assert design.vdd == 3.0 and design.vss == -3.0


class TestOperatingPoint:
    def test_self_bias_equalizes_gate_and_output(self):
        amplifier = SelfBiasedAmplifier()
        op = amplifier.operating_point()
        # Feedback forces V(G1) == V(OUT1) at DC (no gate current).
        assert op["gate"] == pytest.approx(op["stage1"], abs=0.02)

    def test_bias_sits_mid_supply(self):
        op = SelfBiasedAmplifier().operating_point()
        assert 0.5 < op["stage1"] < 2.5

    def test_nine_transistors(self):
        assert SelfBiasedAmplifier().tft_count() == 9


class TestGain:
    # One shared measurement: the transient sim is the expensive part.
    @pytest.fixture(scope="class")
    def measurement(self):
        return SelfBiasedAmplifier().measure(periods=6, points_per_period=90)

    def test_gain_near_paper_28db(self, measurement):
        # Paper: ~28 dB at 30 kHz; the calibrated model lands within a
        # few dB (see EXPERIMENTS.md).
        assert 20.0 <= measurement.gain_db <= 34.0

    def test_output_amplitude_volt_level(self, measurement):
        # Paper: 50 mV in -> 1.3 V out; we accept the volt range.
        assert 0.5 <= measurement.output_amplitude_v <= 2.0

    def test_measure_validation(self):
        amplifier = SelfBiasedAmplifier()
        with pytest.raises(ValueError):
            amplifier.measure(input_amplitude_v=0.0)
        with pytest.raises(ValueError):
            amplifier.measure(frequency_hz=-1.0)
