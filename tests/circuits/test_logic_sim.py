"""Tests for the event-driven gate-level simulator."""

import numpy as np
import pytest

from repro.circuits.logic_sim import LogicSimulator
from repro.circuits.pseudo_cmos import cell


class TestBasicGates:
    def test_inverter_follows_input_with_delay(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "INV", ["a"], "y")
        sim.set_stimulus("a", [(0.0, 0), (1e-4, 1)])
        waves = sim.run(5e-4)
        delay = cell("INV").delay_s
        assert waves["y"].value_at(1e-4 + 0.5 * delay) == 1  # still old value
        assert waves["y"].value_at(1e-4 + 1.5 * delay) == 0

    def test_nand_chain_composes(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "NAND2", ["a", "b"], "n")
        sim.add_gate("u1", "INV", ["n"], "y")  # AND via NAND+INV
        sim.set_stimulus("a", [(0.0, 1)])
        sim.set_stimulus("b", [(0.0, 1)])
        waves = sim.run(1e-3)
        assert waves["y"].value_at(1e-3) == 1

    def test_inertial_delay_filters_glitch(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "INV", ["a"], "y")
        delay = cell("INV").delay_s
        # pulse much shorter than the gate delay
        sim.set_stimulus("a", [(0.0, 0), (1e-4, 1), (1e-4 + 0.2 * delay, 0)])
        waves = sim.run(1e-3)
        # output settles high and never pulses low
        values = [v for _, v in waves["y"].changes]
        assert values.count(0) == 0

    def test_x_resolution_with_controlling_input(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "NAND2", ["a", "b"], "y")
        sim.set_stimulus("a", [(0.0, 0)])  # controlling 0 -> output 1
        waves = sim.run(1e-3)  # b never driven (X)
        assert waves["y"].value_at(1e-3) == 1

    def test_x_propagates_without_controlling_input(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "NAND2", ["a", "b"], "y")
        sim.set_stimulus("a", [(0.0, 1)])  # non-controlling; b unknown
        waves = sim.run(1e-3)
        assert waves["y"].value_at(1e-3) is None


class TestLatchFeedback:
    def test_mux_latch_holds_value(self):
        sim = LogicSimulator()
        # q = en ? d : q
        sim.add_gate("latch", "MUX2", ["en", "d", "q"], "q")
        sim.set_stimulus("en", [(0.0, 1), (1e-3, 0)])
        sim.set_stimulus("d", [(0.0, 1), (2e-3, 0)])
        waves = sim.run(4e-3)
        assert waves["q"].value_at(0.9e-3) == 1  # transparent
        assert waves["q"].value_at(3.9e-3) == 1  # held after d change


class TestValidation:
    def test_duplicate_gate_name(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            sim.add_gate("u0", "INV", ["b"], "z")

    def test_double_driver_rejected(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            sim.add_gate("u1", "INV", ["b"], "y")

    def test_stimulus_on_driven_net_rejected(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            sim.set_stimulus("y", [(0.0, 1)])

    def test_bad_stimulus_value(self):
        sim = LogicSimulator()
        with pytest.raises(ValueError):
            sim.set_stimulus("a", [(0.0, 2)])

    def test_run_needs_positive_stop(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "INV", ["a"], "y")
        with pytest.raises(ValueError):
            sim.run(0.0)

    def test_clock_stimulus_validation(self):
        sim = LogicSimulator()
        with pytest.raises(ValueError):
            sim.clock_stimulus("clk", 0.0, 1.0)


class TestAccounting:
    def test_tft_count_sums_cells(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "INV", ["a"], "y")
        sim.add_gate("u1", "NAND2", ["y", "b"], "z")
        assert sim.tft_count() == 4 + 6

    def test_waveform_sampling_marks_unknown(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "INV", ["a"], "y")
        waves = sim.run(1e-4)  # no stimulus at all
        sampled = waves["y"].sample(np.array([5e-5]))
        assert sampled[0] == -1

    def test_edges_listing(self):
        sim = LogicSimulator()
        sim.add_gate("u0", "BUF", ["a"], "y")
        sim.clock_stimulus("a", 1000.0, 3e-3)
        waves = sim.run(3e-3)
        rising = waves["a"].edges(rising=True)
        falling = waves["a"].edges(rising=False)
        assert len(rising) >= 2
        assert len(falling) >= 2
