"""Tests for the MNA circuit engine against analytic references."""

import numpy as np
import pytest

from repro.circuits.mna import ConvergenceError, MnaSimulator
from repro.circuits.netlist import GROUND, Circuit, pulse
from repro.devices.cnt_tft import CntTft, TftParameters


class TestDcLinear:
    def test_resistor_divider(self):
        circuit = Circuit("divider")
        circuit.add_voltage_source("v1", "in", GROUND, 10.0)
        circuit.add_resistor("r1", "in", "mid", 1000.0)
        circuit.add_resistor("r2", "mid", GROUND, 3000.0)
        op = MnaSimulator(circuit).dc_operating_point()
        assert op["mid"] == pytest.approx(7.5, rel=1e-6)

    def test_source_current(self):
        circuit = Circuit("load")
        circuit.add_voltage_source("v1", "in", GROUND, 5.0)
        circuit.add_resistor("r1", "in", GROUND, 500.0)
        op = MnaSimulator(circuit).dc_operating_point()
        # MNA branch current flows from + to - inside the source
        assert abs(op.source_currents["v1"]) == pytest.approx(0.01, rel=1e-6)

    def test_capacitor_open_at_dc(self):
        circuit = Circuit("rc")
        circuit.add_voltage_source("v1", "in", GROUND, 5.0)
        circuit.add_resistor("r1", "in", "out", 1000.0)
        circuit.add_capacitor("c1", "out", GROUND, 1e-9)
        op = MnaSimulator(circuit).dc_operating_point()
        assert op["out"] == pytest.approx(5.0, rel=1e-5)

    def test_ground_voltage_is_zero(self):
        circuit = Circuit()
        circuit.add_voltage_source("v1", "a", GROUND, 1.0)
        circuit.add_resistor("r1", "a", GROUND, 1.0e3)
        op = MnaSimulator(circuit).dc_operating_point()
        assert op[GROUND] == 0.0


class TestDcNonlinear:
    def test_tft_load_line(self):
        """Series resistor + p-type TFT: solution satisfies both laws."""
        circuit = Circuit("loadline")
        circuit.add_voltage_source("vdd", "vdd", GROUND, 3.0)
        circuit.add_voltage_source("vg", "g", GROUND, 0.0)
        device = CntTft(100, 10)
        # p-type with source at VDD, drain pulled low through R.
        circuit.add_tft("m1", gate="g", drain="d", source="vdd", device=device)
        circuit.add_resistor("rl", "d", GROUND, 1.0e5)
        op = MnaSimulator(circuit).dc_operating_point()
        v_d = op["d"]
        i_resistor = v_d / 1.0e5
        i_tft = device.drain_current(0.0 - 3.0, v_d - 3.0)
        assert i_resistor == pytest.approx(i_tft, rel=1e-4)

    def test_off_tft_pulls_nothing(self):
        circuit = Circuit("off")
        circuit.add_voltage_source("vdd", "vdd", GROUND, 3.0)
        circuit.add_voltage_source("vg", "g", GROUND, 3.0)  # gate high -> off
        circuit.add_tft("m1", gate="g", drain="d", source="vdd",
                        device=CntTft(100, 10))
        circuit.add_resistor("rl", "d", GROUND, 1.0e5)
        op = MnaSimulator(circuit).dc_operating_point()
        assert op["d"] < 0.05


class TestDcSweep:
    def test_sweep_records_requested_nets(self):
        circuit = Circuit("sweep")
        circuit.add_voltage_source("vin", "in", GROUND, 0.0)
        circuit.add_resistor("r1", "in", "out", 1000.0)
        circuit.add_resistor("r2", "out", GROUND, 1000.0)
        sim = MnaSimulator(circuit)
        values = np.linspace(0, 4, 5)
        sweep = sim.dc_sweep("vin", values, record=["out"])
        assert np.allclose(sweep["out"], values / 2.0)
        assert "I(vin)" in sweep

    def test_sweep_restores_waveform(self):
        circuit = Circuit()
        circuit.add_voltage_source("vin", "in", GROUND, 1.5)
        circuit.add_resistor("r1", "in", GROUND, 1e3)
        sim = MnaSimulator(circuit)
        sim.dc_sweep("vin", np.array([0.0, 1.0]), record=["in"])
        assert circuit.voltage_sources()[0].value(0.0) == 1.5

    def test_unknown_source_rejected(self):
        circuit = Circuit()
        circuit.add_voltage_source("vin", "in", GROUND, 1.0)
        circuit.add_resistor("r1", "in", GROUND, 1e3)
        with pytest.raises(KeyError):
            MnaSimulator(circuit).dc_sweep("nope", np.array([0.0]), record=["in"])


class TestTransient:
    def test_rc_charging_time_constant(self):
        circuit = Circuit("rc")
        r, c = 1.0e4, 1.0e-8  # tau = 100 us
        circuit.add_voltage_source(
            "v1", "in", GROUND, pulse(0.0, 1.0, period_s=1.0, delay_s=0.0)
        )
        circuit.add_resistor("r1", "in", "out", r)
        circuit.add_capacitor("c1", "out", GROUND, c)
        sim = MnaSimulator(circuit)
        result = sim.transient(
            stop_s=5e-4, step_s=1e-6, record=["out"], start_from_dc=False
        )
        tau_index = np.searchsorted(result.times, r * c)
        assert result["out"][tau_index] == pytest.approx(1 - np.exp(-1), abs=0.02)
        assert result["out"][-1] == pytest.approx(1.0, abs=0.01)

    def test_transient_records_all_nets_by_default(self):
        circuit = Circuit()
        circuit.add_voltage_source("v1", "a", GROUND, 1.0)
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_resistor("r2", "b", GROUND, 1e3)
        result = MnaSimulator(circuit).transient(stop_s=1e-5, step_s=1e-6)
        assert set(result.nets()) == {"a", "b"}

    def test_unknown_record_net_rejected(self):
        circuit = Circuit()
        circuit.add_voltage_source("v1", "a", GROUND, 1.0)
        circuit.add_resistor("r1", "a", GROUND, 1e3)
        with pytest.raises(KeyError):
            MnaSimulator(circuit).transient(1e-5, 1e-6, record=["nope"])

    def test_validation(self):
        circuit = Circuit()
        circuit.add_voltage_source("v1", "a", GROUND, 1.0)
        circuit.add_resistor("r1", "a", GROUND, 1e3)
        sim = MnaSimulator(circuit)
        with pytest.raises(ValueError):
            sim.transient(0.0, 1e-6)
        with pytest.raises(ValueError):
            sim.transient(1e-5, 0.0)


class TestLinearProperties:
    def test_superposition_on_resistive_network(self):
        """For a purely resistive network, the response to two sources
        equals the sum of the responses to each source alone."""

        def solve_with(v1, v2):
            circuit = Circuit("super")
            circuit.add_voltage_source("s1", "a", GROUND, v1)
            circuit.add_voltage_source("s2", "b", GROUND, v2)
            circuit.add_resistor("r1", "a", "mid", 1.0e3)
            circuit.add_resistor("r2", "b", "mid", 2.0e3)
            circuit.add_resistor("r3", "mid", GROUND, 3.0e3)
            return MnaSimulator(circuit).dc_operating_point()["mid"]

        both = solve_with(2.0, 5.0)
        only_first = solve_with(2.0, 0.0)
        only_second = solve_with(0.0, 5.0)
        assert both == pytest.approx(only_first + only_second, rel=1e-9)

    def test_scaling_linearity(self):
        def solve_with(v):
            circuit = Circuit("lin")
            circuit.add_voltage_source("s1", "a", GROUND, v)
            circuit.add_resistor("r1", "a", "out", 1.0e3)
            circuit.add_resistor("r2", "out", GROUND, 4.0e3)
            return MnaSimulator(circuit).dc_operating_point()["out"]

        assert solve_with(6.0) == pytest.approx(3.0 * solve_with(2.0), rel=1e-9)
