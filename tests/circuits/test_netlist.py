"""Tests for the netlist data model and stimuli."""

import numpy as np
import pytest

from repro.circuits.netlist import (
    GROUND,
    Capacitor,
    Circuit,
    Resistor,
    dc,
    pulse,
    pwl,
    sine,
)
from repro.devices.cnt_tft import CntTft


class TestComponents:
    def test_resistor_validation(self):
        with pytest.raises(ValueError):
            Resistor("r1", "a", "b", 0.0)

    def test_capacitor_validation(self):
        with pytest.raises(ValueError):
            Capacitor("c1", "a", "b", -1e-9)


class TestCircuit:
    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", GROUND, 100.0)
        with pytest.raises(ValueError):
            circuit.add_resistor("r1", "b", GROUND, 100.0)

    def test_nets_exclude_ground(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", GROUND, 100.0)
        circuit.add_resistor("r2", "a", "b", 100.0)
        assert circuit.nets() == ["a", "b"]

    def test_tft_count(self):
        circuit = Circuit()
        device = CntTft(10, 10)
        circuit.add_tft("m1", "g", "d", "s", device)
        circuit.add_tft("m2", "g", "d2", "s", device)
        circuit.add_resistor("r1", "d", GROUND, 1e3)
        assert circuit.tft_count() == 2

    def test_numeric_waveform_wrapped(self):
        circuit = Circuit()
        source = circuit.add_voltage_source("v1", "a", GROUND, 2.5)
        assert source.value(0.0) == 2.5
        assert source.value(1.0) == 2.5

    def test_voltage_sources_listed_in_order(self):
        circuit = Circuit()
        circuit.add_voltage_source("v1", "a", GROUND, 1.0)
        circuit.add_voltage_source("v2", "b", GROUND, 2.0)
        assert [s.name for s in circuit.voltage_sources()] == ["v1", "v2"]


class TestStimuli:
    def test_dc(self):
        waveform = dc(3.3)
        assert waveform(0.0) == 3.3
        assert waveform(100.0) == 3.3

    def test_sine_amplitude_offset(self):
        waveform = sine(1.0, 1000.0, offset=0.5)
        quarter = 1.0 / 4000.0
        assert waveform(0.0) == pytest.approx(0.5)
        assert waveform(quarter) == pytest.approx(1.5)

    def test_sine_validation(self):
        with pytest.raises(ValueError):
            sine(1.0, 0.0)

    def test_pulse_square(self):
        waveform = pulse(0.0, 3.0, period_s=1e-3, duty=0.5)
        assert waveform(0.1e-3) == 3.0
        assert waveform(0.6e-3) == 0.0
        assert waveform(1.1e-3) == 3.0

    def test_pulse_delay(self):
        waveform = pulse(0.0, 1.0, period_s=1e-3, delay_s=1e-3)
        assert waveform(0.5e-3) == 0.0
        assert waveform(1.1e-3) == 1.0

    def test_pulse_rise_time_interpolates(self):
        waveform = pulse(0.0, 1.0, period_s=1e-3, rise_s=0.1e-3)
        assert 0.0 < waveform(0.05e-3) < 1.0

    def test_pulse_validation(self):
        with pytest.raises(ValueError):
            pulse(0.0, 1.0, period_s=0.0)
        with pytest.raises(ValueError):
            pulse(0.0, 1.0, period_s=1.0, duty=1.0)

    def test_pwl_interpolation(self):
        waveform = pwl([(0.0, 0.0), (1.0, 2.0)])
        assert waveform(0.5) == pytest.approx(1.0)
        assert waveform(2.0) == pytest.approx(2.0)  # clamps at the end

    def test_pwl_validation(self):
        with pytest.raises(ValueError):
            pwl([])
        with pytest.raises(ValueError):
            pwl([(1.0, 0.0), (0.5, 1.0)])
