"""Tests for the pseudo-CMOS cell library (gate + transistor level)."""

import itertools

import numpy as np
import pytest

from repro.circuits.mna import MnaSimulator
from repro.circuits.netlist import GROUND, Circuit
from repro.circuits.pseudo_cmos import (
    CELL_LIBRARY,
    LogicLevels,
    build_inverter,
    build_nand2,
    cell,
)


class TestCellLibrary:
    def test_truth_tables(self):
        assert cell("INV").evaluate((0,)) == 1
        assert cell("INV").evaluate((1,)) == 0
        assert cell("BUF").evaluate((1,)) == 1
        for a, b in itertools.product((0, 1), repeat=2):
            assert cell("NAND2").evaluate((a, b)) == 1 - (a & b)
            assert cell("NOR2").evaluate((a, b)) == 1 - (a | b)
            assert cell("AND2").evaluate((a, b)) == (a & b)
            assert cell("XOR2").evaluate((a, b)) == (a ^ b)

    def test_mux_semantics(self):
        mux = cell("MUX2")
        assert mux.evaluate((1, 1, 0)) == 1  # select=1 -> first data input
        assert mux.evaluate((0, 1, 0)) == 0  # select=0 -> second data input

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            cell("NAND2").evaluate((1,))

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            cell("NAND9")

    def test_tft_counts_positive(self):
        for spec in CELL_LIBRARY.values():
            assert spec.tft_count > 0
            assert spec.delay_s > 0

    def test_inverter_is_four_tfts(self):
        # pseudo-D style: two-stage, four mono-type TFTs
        assert cell("INV").tft_count == 4


class TestLogicLevels:
    def test_needs_negative_vss(self):
        with pytest.raises(ValueError):
            LogicLevels(vdd=3.0, vss=0.0)
        with pytest.raises(ValueError):
            LogicLevels(vdd=-1.0, vss=-3.0)


class TestTransistorLevelInverter:
    def test_rail_to_rail_transfer(self):
        circuit = Circuit("inv")
        circuit.add_voltage_source("vin", "IN", GROUND, 0.0)
        build_inverter(circuit, "u0", "IN", "OUT")
        sim = MnaSimulator(circuit)
        sweep = sim.dc_sweep("vin", np.linspace(0, 3, 16), record=["OUT"])
        assert sweep["OUT"][0] > 2.7  # input low -> output high
        assert sweep["OUT"][-1] < 0.1  # input high -> output low

    def test_transfer_is_monotone_decreasing(self):
        circuit = Circuit("inv")
        circuit.add_voltage_source("vin", "IN", GROUND, 0.0)
        build_inverter(circuit, "u0", "IN", "OUT")
        sweep = MnaSimulator(circuit).dc_sweep(
            "vin", np.linspace(0, 3, 31), record=["OUT"]
        )
        assert np.all(np.diff(sweep["OUT"]) <= 1e-6)

    def test_instantiates_four_tfts(self):
        circuit = Circuit()
        circuit.add_voltage_source("vin", "IN", GROUND, 0.0)
        build_inverter(circuit, "u0", "IN", "OUT")
        assert circuit.tft_count() == 4


class TestTransistorLevelNand:
    @pytest.mark.parametrize(
        "a,b,expected_high",
        [(0.0, 0.0, True), (0.0, 3.0, True), (3.0, 0.0, True), (3.0, 3.0, False)],
    )
    def test_truth_table(self, a, b, expected_high):
        circuit = Circuit("nand")
        circuit.add_voltage_source("va", "A", GROUND, a)
        circuit.add_voltage_source("vb", "B", GROUND, b)
        build_nand2(circuit, "u0", "A", "B", "OUT")
        op = MnaSimulator(circuit).dc_operating_point()
        if expected_high:
            assert op["OUT"] > 2.5
        else:
            assert op["OUT"] < 0.1

    def test_instantiates_six_tfts(self):
        circuit = Circuit()
        circuit.add_voltage_source("va", "A", GROUND, 0.0)
        circuit.add_voltage_source("vb", "B", GROUND, 0.0)
        build_nand2(circuit, "u0", "A", "B", "OUT")
        assert circuit.tft_count() == 6
