"""Pseudo-D vs pseudo-E inverter comparison (DATE 2010 styles)."""

import numpy as np
import pytest

from repro.circuits.mna import MnaSimulator
from repro.circuits.netlist import GROUND, Circuit
from repro.circuits.pseudo_cmos import build_inverter, build_inverter_pseudo_e


def _vtc(builder):
    circuit = Circuit("vtc")
    circuit.add_voltage_source("vin", "IN", GROUND, 0.0)
    builder(circuit, "u0", "IN", "OUT")
    sweep = MnaSimulator(circuit).dc_sweep(
        "vin", np.linspace(0.0, 3.0, 31), record=["OUT"]
    )
    return sweep["sweep"], sweep["OUT"], circuit


class TestPseudoE:
    def test_two_transistors(self):
        _, _, circuit = _vtc(build_inverter_pseudo_e)
        assert circuit.tft_count() == 2

    def test_inverting(self):
        vin, vout, _ = _vtc(build_inverter_pseudo_e)
        assert vout[0] > vout[-1]
        assert np.all(np.diff(vout) <= 1e-6)


class TestStyleComparison:
    @pytest.fixture(scope="class")
    def curves(self):
        vin, vout_d, _ = _vtc(build_inverter)
        _, vout_e, _ = _vtc(build_inverter_pseudo_e)
        return vin, vout_d, vout_e

    def test_pseudo_d_levels_are_self_compatible(self, curves):
        """The point of the second stage: pseudo-D's output levels fall
        inside its own input range [0, VDD], so stages cascade directly;
        pseudo-E's low level escapes toward VSS."""
        vin, vout_d, vout_e = curves
        assert 0.0 - 0.05 <= vout_d.min() and vout_d.max() <= 3.0 + 0.05
        assert vout_e.min() < -0.5  # outside the [0, VDD] input range

    def test_pseudo_d_output_low_closer_to_rail(self, curves):
        _, vout_d, vout_e = curves
        # pseudo-D pulls to GND through the dedicated M4; pseudo-E's
        # ratioed load drags the low level toward VSS instead of a
        # clean logic low referenced to GND.
        assert abs(vout_d[-1]) < 0.1
        assert vout_e[-1] < -0.5  # level-shifted below ground

    def test_pseudo_d_rail_high_pseudo_e_ratioed(self, curves):
        _, vout_d, vout_e = curves
        assert vout_d[0] > 2.7  # full pull-up
        assert 2.0 < vout_e[0] < 2.7  # ratioed V_OH sags below VDD
