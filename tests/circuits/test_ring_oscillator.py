"""Tests for the 5-stage ring oscillator (process test vehicle)."""

import pytest

from repro.circuits.ring_oscillator import RingOscillator


class TestConstruction:
    def test_five_stages_twenty_tfts(self):
        assert RingOscillator(stages=5).tft_count() == 20

    def test_even_or_short_ring_rejected(self):
        with pytest.raises(ValueError):
            RingOscillator(stages=4)
        with pytest.raises(ValueError):
            RingOscillator(stages=1)

    def test_negative_parasitics_rejected(self):
        with pytest.raises(ValueError):
            RingOscillator(wiring_c_farads=-1e-12)


class TestOscillation:
    @pytest.fixture(scope="class")
    def measurement(self):
        return RingOscillator(stages=5).simulate()

    def test_oscillates_in_flexible_regime(self, measurement):
        # Fabricated CNT-TFT rings sit in the kHz..hundreds-of-kHz range.
        assert 1e3 < measurement.frequency_hz < 1e6

    def test_stage_delay_consistent_with_frequency(self, measurement):
        expected = 1.0 / (2.0 * 5 * measurement.stage_delay_s)
        assert measurement.frequency_hz == pytest.approx(expected, rel=1e-6)

    def test_healthy_swing(self, measurement):
        # pseudo-CMOS output should swing a good fraction of VDD = 3 V.
        assert measurement.amplitude_v > 0.8

    def test_more_parasitics_slower(self, measurement):
        heavy = RingOscillator(stages=5, wiring_c_farads=8e-11).simulate()
        assert heavy.frequency_hz < measurement.frequency_hz

    def test_row_renders(self, measurement):
        assert "5-stage RO" in measurement.row()
