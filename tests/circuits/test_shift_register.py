"""Tests for the 8-stage shift register (Fig. 5c-d)."""

import numpy as np
import pytest

from repro.circuits.shift_register import ShiftRegister


class TestTftCount:
    def test_paper_count_304(self):
        # Sec. 3.4: "the 8-stage shift-register ... consists of 304 CNT TFTs"
        assert ShiftRegister(stages=8).tft_count() == 304

    def test_scales_linearly_with_stages(self):
        sr4 = ShiftRegister(stages=4).tft_count()
        sr8 = ShiftRegister(stages=8).tft_count()
        assert sr8 - sr4 == 4 * 36

    def test_needs_at_least_one_stage(self):
        with pytest.raises(ValueError):
            ShiftRegister(stages=0)


class TestFunctionality:
    def test_functional_at_paper_operating_point(self):
        # CLK 10 kHz, DATA 1 kHz, VDD 3 V (Fig. 5c-d)
        result = ShiftRegister(stages=8).simulate(
            clock_hz=10_000.0, data_hz=1_000.0, vdd=3.0
        )
        assert result.functional
        assert result.tft_count == 304

    def test_fails_at_excessive_clock(self):
        result = ShiftRegister(stages=8).simulate(
            clock_hz=200_000.0, data_hz=20_000.0, vdd=3.0
        )
        assert not result.functional

    def test_low_supply_slows_then_fails(self):
        register = ShiftRegister(stages=4)
        ok = register.simulate(clock_hz=10_000.0, data_hz=1_000.0, vdd=3.0)
        slow = register.simulate(clock_hz=10_000.0, data_hz=1_000.0, vdd=1.2)
        assert ok.functional
        assert not slow.functional

    def test_vdd_validation(self):
        with pytest.raises(ValueError):
            ShiftRegister(stages=2).simulate(vdd=0.5)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ShiftRegister(stages=2).simulate(clock_hz=0.0)


class TestWaveforms:
    def test_sampled_traces_shapes(self):
        register = ShiftRegister(stages=4)
        result = register.simulate(clock_hz=10_000.0, data_hz=1_000.0)
        times = np.linspace(0, 30 / 10_000.0, 50)
        sampled = result.sampled(times)
        assert set(sampled) == {"CLK", "DATA", "Q1", "Q2", "Q3", "Q4"}
        for trace in sampled.values():
            assert len(trace) == 50

    def test_stage_outputs_are_delayed_data(self):
        register = ShiftRegister(stages=2)
        result = register.simulate(clock_hz=10_000.0, data_hz=1_000.0, periods=40)
        period = 1.0 / 10_000.0
        probe_times = (np.arange(10, 35) + 0.45) * period
        data = result.waveforms["DATA"].sample(probe_times - 2 * period)
        q2 = result.waveforms["Q2"].sample(probe_times)
        # Q2 equals DATA delayed by two clock periods (sampled clear of edges)
        matches = np.mean(data == q2)
        assert matches > 0.9
