"""Tests for SPICE-like netlist serialisation."""

import numpy as np
import pytest

from repro.circuits.mna import MnaSimulator
from repro.circuits.netlist import GROUND, Circuit, sine
from repro.circuits.pseudo_cmos import build_inverter
from repro.circuits.spice_io import NetlistFormatError, dump_netlist, load_netlist
from repro.devices.cnt_tft import CntTft


def _example_circuit():
    circuit = Circuit("example")
    circuit.add_voltage_source("vdd", "VDD", GROUND, 3.0)
    circuit.add_resistor("r1", "VDD", "out", 1.5e4)
    circuit.add_capacitor("c1", "out", GROUND, 2.2e-9)
    circuit.add_tft("m1", gate="in", drain="out", source="VDD",
                    device=CntTft(120.0, 12.0))
    return circuit


class TestRoundTrip:
    def test_structure_preserved(self):
        text = dump_netlist(_example_circuit())
        loaded = load_netlist(text)
        assert loaded.name == "example"
        assert loaded.tft_count() == 1
        assert sorted(loaded.nets()) == sorted(_example_circuit().nets())

    def test_values_preserved(self):
        loaded = load_netlist(dump_netlist(_example_circuit()))
        by_name = {c.name: c for c in loaded.components}
        assert by_name["r1"].ohms == pytest.approx(1.5e4)
        assert by_name["c1"].farads == pytest.approx(2.2e-9)
        assert by_name["vdd"].value(0.0) == pytest.approx(3.0)
        assert by_name["m1"].device.width_um == pytest.approx(120.0)
        assert by_name["m1"].device.length_um == pytest.approx(12.0)
        assert by_name["m1"].device.polarity == "p"

    def test_loaded_circuit_simulates_identically(self):
        original = Circuit("inv")
        original.add_voltage_source("vin", "IN", GROUND, 1.0)
        build_inverter(original, "u0", "IN", "OUT")
        loaded = load_netlist(dump_netlist(original))
        op_original = MnaSimulator(original).dc_operating_point()
        op_loaded = MnaSimulator(loaded).dc_operating_point()
        assert op_loaded["OUT"] == pytest.approx(op_original["OUT"], abs=1e-9)

    def test_comments_and_blank_lines_ignored(self):
        text = "* a comment\n\n.title t\nRr1 a 0 100\n.end\n"
        loaded = load_netlist(text)
        assert len(loaded.components) == 1


class TestErrors:
    def test_time_varying_source_rejected_on_dump(self):
        circuit = Circuit()
        circuit.add_voltage_source("vin", "a", GROUND, sine(1.0, 1e3))
        with pytest.raises(NetlistFormatError):
            dump_netlist(circuit)

    def test_unknown_card_rejected(self):
        with pytest.raises(NetlistFormatError):
            load_netlist("Xfoo a b c\n")

    def test_malformed_value_rejected(self):
        with pytest.raises(NetlistFormatError):
            load_netlist("Rr1 a 0 lots\n")

    def test_non_dc_source_rejected(self):
        with pytest.raises(NetlistFormatError):
            load_netlist("Vv1 a 0 SIN 1.0\n")

    def test_malformed_tft_rejected(self):
        with pytest.raises(NetlistFormatError):
            load_netlist("Mm1 d g s\n")
