"""Tests for waveform measurement helpers."""

import numpy as np
import pytest

from repro.circuits.waveform import (
    TransientResult,
    amplitude,
    crossing_times,
    dominant_frequency,
    gain_db,
    propagation_delay,
    to_logic,
)


class TestTransientResult:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TransientResult(times=np.arange(3.0), traces={"a": np.zeros(4)})

    def test_window_slices_all_traces(self):
        result = TransientResult(
            times=np.linspace(0, 1, 11),
            traces={"a": np.arange(11.0), "b": np.arange(11.0) * 2},
        )
        windowed = result.window(0.5)
        assert windowed.times[0] >= 0.5
        assert len(windowed["a"]) == len(windowed.times)

    def test_getitem(self):
        result = TransientResult(times=np.arange(2.0), traces={"x": np.ones(2)})
        assert np.array_equal(result["x"], np.ones(2))


class TestAmplitude:
    def test_half_peak_to_peak(self):
        t = np.linspace(0, 1, 1000)
        assert amplitude(2.5 * np.sin(2 * np.pi * 5 * t)) == pytest.approx(2.5, rel=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            amplitude(np.array([]))


class TestGainDb:
    def test_known_gain(self):
        t = np.linspace(0, 1, 2000)
        vin = 0.1 * np.sin(2 * np.pi * 3 * t)
        vout = 1.0 * np.sin(2 * np.pi * 3 * t)
        assert gain_db(vin, vout) == pytest.approx(20.0, abs=0.05)

    def test_zero_output_minus_infinity(self):
        t = np.linspace(0, 1, 100)
        assert gain_db(np.sin(t), np.zeros(100)) == float("-inf")

    def test_zero_input_rejected(self):
        with pytest.raises(ValueError):
            gain_db(np.zeros(10), np.ones(10))


class TestDominantFrequency:
    def test_pure_tone(self):
        t = np.linspace(0, 1e-3, 3000, endpoint=False)
        trace = np.sin(2 * np.pi * 30e3 * t) + 0.5
        assert dominant_frequency(t, trace) == pytest.approx(30e3, rel=0.01)

    def test_needs_samples(self):
        with pytest.raises(ValueError):
            dominant_frequency(np.arange(2.0), np.arange(2.0))


class TestCrossings:
    def test_rising_crossings(self):
        t = np.linspace(0, 2.2, 2201)
        trace = np.sin(2 * np.pi * t)
        rising = crossing_times(t, trace, 0.5, rising=True)
        # sin crosses 0.5 upward at t = 1/12 + k
        assert len(rising) == 3
        assert rising[0] == pytest.approx(1.0 / 12.0, abs=2e-3)

    def test_falling_crossings(self):
        t = np.linspace(0, 1, 1001)
        trace = np.sin(2 * np.pi * t)
        falling = crossing_times(t, trace, 0.0, rising=False)
        assert falling[0] == pytest.approx(0.5, abs=1e-3)


class TestPropagationDelay:
    def test_known_shift(self):
        t = np.linspace(0, 1, 10001)
        vin = (np.sin(2 * np.pi * 2 * t) > 0).astype(float)
        vout = 1.0 - np.roll(vin, 200)  # inverted, delayed by 0.02
        delay = propagation_delay(t[300:-300], vin[300:-300], vout[300:-300], 0.5)
        assert delay == pytest.approx(0.02, abs=2e-3)

    def test_no_edges_rejected(self):
        t = np.linspace(0, 1, 100)
        with pytest.raises(ValueError):
            propagation_delay(t, np.zeros(100), np.zeros(100), 0.5)


class TestToLogic:
    def test_threshold(self):
        trace = np.array([0.1, 2.9, 1.6, 1.4])
        assert np.array_equal(to_logic(trace, vdd=3.0), [0, 1, 1, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            to_logic(np.zeros(3), vdd=0.0)
