"""Tests for block-wise CS processing."""

import numpy as np
import pytest

from repro.core.blocks import BlockProcessor
from repro.core.errors import inject_sparse_errors
from repro.core.metrics import rmse


def _big_frame(shape=(32, 32)):
    r, c = np.mgrid[0:shape[0], 0:shape[1]]
    return 0.5 + 0.3 * np.sin(r / 6.0) * np.cos(c / 7.0) + 0.2 * np.exp(
        -((r - shape[0] / 2) ** 2 + (c - shape[1] / 2) ** 2) / 40.0
    )


class TestTiling:
    def test_block_count(self):
        processor = BlockProcessor(block_shape=(16, 16))
        assert processor.num_blocks((32, 32)) == 4
        assert processor.num_blocks((48, 32)) == 6

    def test_overlap_increases_block_count(self):
        plain = BlockProcessor(block_shape=(16, 16), overlap=0)
        overlapped = BlockProcessor(block_shape=(16, 16), overlap=8)
        assert overlapped.num_blocks((40, 40)) > plain.num_blocks((32, 32))

    def test_frame_smaller_than_block_rejected(self):
        processor = BlockProcessor(block_shape=(16, 16))
        with pytest.raises(ValueError, match="smaller than one block"):
            processor.num_blocks((12, 32))
        with pytest.raises(ValueError, match="smaller than one block"):
            processor.num_blocks((32, 15))

    def test_ragged_edges_covered_by_shifted_tiles(self):
        processor = BlockProcessor(block_shape=(16, 16))
        # 30 rows: tile row at 0 plus a tail tile shifted inward to 14.
        assert processor.num_blocks((30, 32)) == 4
        origins = processor._tiles((30, 32))
        assert origins == [(0, 0), (0, 16), (14, 0), (14, 16)]
        # Exact fits gain no extra tiles.
        assert processor.num_blocks((32, 32)) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockProcessor(block_shape=(2, 16))
        with pytest.raises(ValueError):
            BlockProcessor(block_shape=(16, 16), overlap=16)
        with pytest.raises(ValueError):
            BlockProcessor(sampling_fraction=0.0)


class TestReconstruction:
    def test_reconstructs_smooth_frame(self):
        frame = _big_frame()
        processor = BlockProcessor(block_shape=(16, 16), sampling_fraction=0.6)
        out = processor.reconstruct(frame, np.random.default_rng(0))
        assert out.shape == frame.shape
        assert rmse(frame, out) < 0.05

    def test_overlap_blending_reduces_seams(self):
        frame = _big_frame((40, 40))
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        hard = BlockProcessor(block_shape=(16, 16), overlap=0,
                              sampling_fraction=0.55)
        soft = BlockProcessor(block_shape=(16, 16), overlap=8,
                              sampling_fraction=0.55)
        out_hard = hard.reconstruct(frame[:32, :32], rng_a)
        out_soft = soft.reconstruct(frame, rng_b)
        # seam metric: jump across the tile boundary row
        seam_hard = np.abs(np.diff(out_hard, axis=0))[15].mean()
        seam_soft = np.abs(np.diff(out_soft, axis=0))[15].mean()
        assert seam_soft < seam_hard + 0.02  # soft blending never much worse

    def test_exclusion_mask_respected(self):
        frame = _big_frame()
        rng = np.random.default_rng(2)
        corrupted, mask = inject_sparse_errors(frame, 0.1, rng)
        processor = BlockProcessor(block_shape=(16, 16), sampling_fraction=0.5)
        with_mask = processor.reconstruct(
            corrupted, np.random.default_rng(3), exclude_mask=mask
        )
        without = processor.reconstruct(corrupted, np.random.default_rng(3))
        assert rmse(frame, with_mask) < rmse(frame, without)

    def test_rejects_bad_input(self):
        processor = BlockProcessor(block_shape=(16, 16))
        with pytest.raises(ValueError):
            processor.reconstruct(np.zeros(32), np.random.default_rng(0))
        with pytest.raises(ValueError):
            processor.reconstruct(
                np.zeros((32, 32)), np.random.default_rng(0),
                exclude_mask=np.zeros((16, 16), dtype=bool),
            )


class TestStrategyHook:
    def test_strategy_object_validated(self):
        with pytest.raises(TypeError, match="reconstruct"):
            BlockProcessor(block_shape=(16, 16), strategy=object())

    def test_tiles_route_through_strategy(self):
        calls = []

        class Recorder:
            def reconstruct(self, tile, rng, **kwargs):
                calls.append((tile.shape, sorted(kwargs)))
                return np.zeros_like(tile)

        processor = BlockProcessor(block_shape=(16, 16), strategy=Recorder())
        out = processor.reconstruct(_big_frame(), np.random.default_rng(0))
        assert out.shape == (32, 32)
        assert calls == [((16, 16), [])] * 4

    def test_strategy_receives_local_error_mask(self):
        seen = []

        class Recorder:
            def reconstruct(self, tile, rng, error_mask=None, **_):
                seen.append(error_mask.sum())
                return np.zeros_like(tile)

        frame = _big_frame()
        mask = np.zeros((32, 32), dtype=bool)
        mask[:16, :16] = True  # first tile fully masked
        processor = BlockProcessor(block_shape=(16, 16), strategy=Recorder())
        processor.reconstruct(frame, np.random.default_rng(0),
                              exclude_mask=mask)
        assert seen == [256, 0, 0, 0]

    def test_resilient_strategy_collects_per_tile_outcomes(self):
        from repro.core.strategies import NaiveStrategy
        from repro.resilience import ResilientStrategy

        wrapped = ResilientStrategy(
            inner=NaiveStrategy(sampling_fraction=0.6)
        )
        processor = BlockProcessor(block_shape=(16, 16), strategy=wrapped)
        frame = _big_frame()
        out = processor.reconstruct(frame, np.random.default_rng(0))
        assert rmse(frame, out) < 0.05
        assert processor.last_outcomes is not None
        assert len(processor.last_outcomes) == 4
        origins = [origin for origin, _ in processor.last_outcomes]
        assert origins == [(0, 0), (0, 16), (16, 0), (16, 16)]
        for _, outcome in processor.last_outcomes:
            assert outcome.status == "ok"
            assert outcome.solver == "fista"

    def test_per_tile_degradation_not_per_frame(self):
        """A strategy that dies on one tile degrades that tile only."""
        from repro.core.strategies import NaiveStrategy
        from repro.resilience import ResiliencePolicy, ResilientStrategy
        from repro.resilience.policies import RetryPolicy

        class FlakyStrategy(NaiveStrategy):
            tile_count = 0

            def reconstruct(self, tile, rng, **kwargs):
                FlakyStrategy.tile_count += 1
                if FlakyStrategy.tile_count in (2, 3, 4):  # 2nd tile, all solvers
                    raise RuntimeError("injected tile fault")
                return super().reconstruct(tile, rng, **kwargs)

        wrapped = ResilientStrategy(
            inner=FlakyStrategy(sampling_fraction=0.6),
            policy=ResiliencePolicy(retry=RetryPolicy(max_rounds=1)),
        )
        processor = BlockProcessor(block_shape=(16, 16), strategy=wrapped)
        frame = _big_frame()
        out = processor.reconstruct(frame, np.random.default_rng(0))
        assert out.shape == frame.shape
        assert np.all(np.isfinite(out))
        statuses = [o.status for _, o in processor.last_outcomes]
        assert statuses.count("fallback") == 1  # only the faulted tile
        assert statuses.count("ok") == 3
        # The three healthy tiles still reconstruct well.
        good = np.ones((32, 32), dtype=bool)
        good[:16, 16:] = False
        frame_good = frame.copy()
        masked_rmse = np.sqrt(np.mean((frame_good[good] - out[good]) ** 2))
        assert masked_rmse < 0.05

    def test_engine_cache_shared_across_tiles(self):
        from repro.core.engine import DecodeEngine, use_engine

        processor = BlockProcessor(block_shape=(16, 16),
                                   sampling_fraction=0.6)
        with use_engine(DecodeEngine()) as engine:
            processor.reconstruct(_big_frame(), np.random.default_rng(0))
            # 4 tiles, one shape: one miss, three hits.
            assert engine.cache.misses == 1
            assert engine.cache.hits == 3

    def test_fully_excluded_tile_decodes_to_zeros(self):
        frame = _big_frame()
        mask = np.zeros((32, 32), dtype=bool)
        mask[:16, :16] = True
        processor = BlockProcessor(block_shape=(16, 16),
                                   sampling_fraction=0.5)
        out = processor.reconstruct(
            frame, np.random.default_rng(0), exclude_mask=mask
        )
        np.testing.assert_array_equal(out[:16, :16], 0.0)
        assert rmse(frame[16:, :], out[16:, :]) < 0.05


class TestRaggedReconstruction:
    def test_ragged_frame_fully_covered(self):
        frame = _big_frame((30, 28))
        processor = BlockProcessor(block_shape=(16, 16),
                                   sampling_fraction=0.6)
        out = processor.reconstruct(frame, np.random.default_rng(0))
        assert out.shape == frame.shape
        assert np.all(np.isfinite(out))
        assert rmse(frame, out) < 0.06

    def test_ragged_strategy_path_matches_grid_order(self):
        from repro.core.strategies import NaiveStrategy
        from repro.resilience import ResilientStrategy

        frame = _big_frame((30, 32))
        wrapped = ResilientStrategy(inner=NaiveStrategy(sampling_fraction=0.6))
        processor = BlockProcessor(block_shape=(16, 16), strategy=wrapped)
        processor.reconstruct(frame, np.random.default_rng(0))
        origins = [origin for origin, _ in processor.last_outcomes]
        assert origins == [(0, 0), (0, 16), (14, 0), (14, 16)]

    @pytest.mark.parametrize("executor", [None, "serial", 2])
    def test_ragged_executor_outcome_order_stable(self, executor):
        """last_outcomes keeps tile-grid order under every backend."""
        from repro.core.strategies import NaiveStrategy
        from repro.resilience import ResilientStrategy

        frame = _big_frame((30, 32))
        wrapped = ResilientStrategy(inner=NaiveStrategy(sampling_fraction=0.6))
        processor = BlockProcessor(
            block_shape=(16, 16), strategy=wrapped, executor=executor
        )
        processor.reconstruct(frame, np.random.default_rng(0))
        origins = [origin for origin, _ in processor.last_outcomes]
        assert origins == [(0, 0), (0, 16), (14, 0), (14, 16)]
        assert all(o.status == "ok" for _, o in processor.last_outcomes)


class TestExecutorBackends:
    def _reconstruct(self, executor, seed=7, strategy=None):
        processor = BlockProcessor(
            block_shape=(16, 16),
            sampling_fraction=0.6,
            strategy=strategy,
            executor=executor,
        )
        out = processor.reconstruct(_big_frame(), np.random.default_rng(seed))
        return out, processor

    def test_serial_executor_matches_thread_and_process(self):
        """One spawned child per tile makes every backend bit-identical."""
        reference, _ = self._reconstruct("serial")
        for spec in ("thread", 2):
            out, _ = self._reconstruct(spec)
            np.testing.assert_array_equal(out, reference)

    def test_executor_engine_path_reconstructs(self):
        out, _ = self._reconstruct(2)
        assert rmse(_big_frame(), out) < 0.05

    def test_strategy_copies_keep_backends_identical(self):
        from repro.core.strategies import NaiveStrategy
        from repro.resilience import ResilientStrategy

        def fresh():
            return ResilientStrategy(inner=NaiveStrategy(sampling_fraction=0.6))

        reference, ref_proc = self._reconstruct("serial", strategy=fresh())
        out, proc = self._reconstruct("thread", strategy=fresh())
        np.testing.assert_array_equal(out, reference)
        assert [o for o, _ in proc.last_outcomes] == [
            o for o, _ in ref_proc.last_outcomes
        ]

    def test_executor_respects_exclusion_mask(self):
        frame = _big_frame()
        mask = np.zeros((32, 32), dtype=bool)
        mask[:16, :16] = True
        processor = BlockProcessor(
            block_shape=(16, 16), sampling_fraction=0.5, executor="serial"
        )
        out = processor.reconstruct(
            frame, np.random.default_rng(0), exclude_mask=mask
        )
        np.testing.assert_array_equal(out[:16, :16], 0.0)
