"""Tests for block-wise CS processing."""

import numpy as np
import pytest

from repro.core.blocks import BlockProcessor
from repro.core.errors import inject_sparse_errors
from repro.core.metrics import rmse


def _big_frame(shape=(32, 32)):
    r, c = np.mgrid[0:shape[0], 0:shape[1]]
    return 0.5 + 0.3 * np.sin(r / 6.0) * np.cos(c / 7.0) + 0.2 * np.exp(
        -((r - shape[0] / 2) ** 2 + (c - shape[1] / 2) ** 2) / 40.0
    )


class TestTiling:
    def test_block_count(self):
        processor = BlockProcessor(block_shape=(16, 16))
        assert processor.num_blocks((32, 32)) == 4
        assert processor.num_blocks((48, 32)) == 6

    def test_overlap_increases_block_count(self):
        plain = BlockProcessor(block_shape=(16, 16), overlap=0)
        overlapped = BlockProcessor(block_shape=(16, 16), overlap=8)
        assert overlapped.num_blocks((40, 40)) > plain.num_blocks((32, 32))

    def test_untileable_frame_rejected(self):
        processor = BlockProcessor(block_shape=(16, 16))
        with pytest.raises(ValueError):
            processor.num_blocks((30, 32))

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockProcessor(block_shape=(2, 16))
        with pytest.raises(ValueError):
            BlockProcessor(block_shape=(16, 16), overlap=16)
        with pytest.raises(ValueError):
            BlockProcessor(sampling_fraction=0.0)


class TestReconstruction:
    def test_reconstructs_smooth_frame(self):
        frame = _big_frame()
        processor = BlockProcessor(block_shape=(16, 16), sampling_fraction=0.6)
        out = processor.reconstruct(frame, np.random.default_rng(0))
        assert out.shape == frame.shape
        assert rmse(frame, out) < 0.05

    def test_overlap_blending_reduces_seams(self):
        frame = _big_frame((40, 40))
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        hard = BlockProcessor(block_shape=(16, 16), overlap=0,
                              sampling_fraction=0.55)
        soft = BlockProcessor(block_shape=(16, 16), overlap=8,
                              sampling_fraction=0.55)
        out_hard = hard.reconstruct(frame[:32, :32], rng_a)
        out_soft = soft.reconstruct(frame, rng_b)
        # seam metric: jump across the tile boundary row
        seam_hard = np.abs(np.diff(out_hard, axis=0))[15].mean()
        seam_soft = np.abs(np.diff(out_soft, axis=0))[15].mean()
        assert seam_soft < seam_hard + 0.02  # soft blending never much worse

    def test_exclusion_mask_respected(self):
        frame = _big_frame()
        rng = np.random.default_rng(2)
        corrupted, mask = inject_sparse_errors(frame, 0.1, rng)
        processor = BlockProcessor(block_shape=(16, 16), sampling_fraction=0.5)
        with_mask = processor.reconstruct(
            corrupted, np.random.default_rng(3), exclude_mask=mask
        )
        without = processor.reconstruct(corrupted, np.random.default_rng(3))
        assert rmse(frame, with_mask) < rmse(frame, without)

    def test_rejects_bad_input(self):
        processor = BlockProcessor(block_shape=(16, 16))
        with pytest.raises(ValueError):
            processor.reconstruct(np.zeros(32), np.random.default_rng(0))
        with pytest.raises(ValueError):
            processor.reconstruct(
                np.zeros((32, 32)), np.random.default_rng(0),
                exclude_mask=np.zeros((16, 16), dtype=bool),
            )
