"""Tests for the Douglas-Rachford basis-pursuit solver."""

import numpy as np
import pytest

from repro.core.dct import Dct2Basis, idct2
from repro.core.metrics import rmse
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix, gaussian_matrix
from repro.core.solvers import solve_basis_pursuit, solve_bp_dr


def _sparse_problem(shape=(12, 12), sparsity=10, m=90, seed=0, dense=False):
    rng = np.random.default_rng(seed)
    n = shape[0] * shape[1]
    coefficients = np.zeros(n)
    support = rng.choice(n, size=sparsity, replace=False)
    coefficients[support] = rng.normal(size=sparsity) + np.sign(
        rng.normal(size=sparsity)
    )
    image = idct2(coefficients.reshape(shape))
    if dense:
        phi = gaussian_matrix(m, n, rng)
        b = phi @ image.ravel()
    else:
        phi = RowSamplingMatrix.random(n, m, rng)
        b = phi.apply(image.ravel())
    return SensingOperator(phi, Dct2Basis(shape)), b, coefficients


class TestTightFramePath:
    def test_exact_recovery(self):
        operator, b, coefficients = _sparse_problem()
        result = solve_bp_dr(operator, b)
        assert result.info["tight_frame"]
        assert np.allclose(result.coefficients, coefficients, atol=1e-7)

    def test_solution_is_feasible(self):
        operator, b, _ = _sparse_problem(seed=1)
        result = solve_bp_dr(operator, b)
        assert result.residual < 1e-8

    def test_matches_lp_objective(self):
        operator, b, _ = _sparse_problem(seed=2)
        dr = solve_bp_dr(operator, b)
        lp = solve_basis_pursuit(operator, b)
        assert np.sum(np.abs(dr.coefficients)) == pytest.approx(
            np.sum(np.abs(lp.coefficients)), rel=1e-5
        )

    def test_gamma_insensitive(self):
        operator, b, coefficients = _sparse_problem(seed=3)
        for gamma in (0.01, 0.1, 1.0):
            result = solve_bp_dr(operator, b, gamma=gamma,
                                 max_iterations=3000)
            assert np.allclose(result.coefficients, coefficients, atol=1e-5)


class TestGeneralPath:
    def test_dense_matrix_recovery(self):
        operator, b, coefficients = _sparse_problem(seed=4, dense=True)
        result = solve_bp_dr(operator, b)
        assert not result.info["tight_frame"]
        assert np.allclose(result.coefficients, coefficients, atol=1e-6)


class TestValidation:
    def test_measurement_shape_checked(self):
        operator, b, _ = _sparse_problem()
        with pytest.raises(ValueError):
            solve_bp_dr(operator, b[:-1])

    def test_gamma_positive(self):
        operator, b, _ = _sparse_problem()
        with pytest.raises(ValueError):
            solve_bp_dr(operator, b, gamma=0.0)


class TestOnRealFrames:
    def test_thermal_reconstruction_beats_fista_default(self):
        """On noiseless compressible data, exact BP should match or
        beat the lam-regularised FISTA default."""
        from repro.core.solvers import solve_fista
        from repro.datasets import ThermalHandGenerator

        frame = ThermalHandGenerator(seed=5).frame()
        rng = np.random.default_rng(5)
        phi = RowSamplingMatrix.random(frame.size, frame.size // 2, rng)
        operator = SensingOperator(phi, Dct2Basis(frame.shape))
        b = phi.apply(frame.ravel())
        dr = solve_bp_dr(operator, b, max_iterations=400)
        fista = solve_fista(operator, b)
        error_dr = rmse(
            frame, operator.synthesize(dr.coefficients).reshape(frame.shape)
        )
        error_fista = rmse(
            frame, operator.synthesize(fista.coefficients).reshape(frame.shape)
        )
        assert error_dr < error_fista * 1.1
