"""Tests for repro.core.dct: Eq. (4)-(7) bases and fast transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dct import Dct2Basis, dct2, dct_basis_1d, dct_basis_2d, idct2


class TestDct2:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        image = rng.normal(size=(12, 9))
        assert np.allclose(idct2(dct2(image)), image)

    def test_dc_coefficient_is_scaled_mean(self):
        image = np.full((8, 8), 3.0)
        coefficients = dct2(image)
        assert coefficients[0, 0] == pytest.approx(3.0 * 8)
        assert np.allclose(coefficients.ravel()[1:], 0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            dct2(np.zeros(16))
        with pytest.raises(ValueError):
            idct2(np.zeros((2, 2, 2)))

    def test_parseval_energy_preserved(self):
        rng = np.random.default_rng(1)
        image = rng.normal(size=(16, 16))
        coefficients = dct2(image)
        assert np.sum(coefficients**2) == pytest.approx(np.sum(image**2))


class TestDctBasis1d:
    def test_orthonormal(self):
        basis = dct_basis_1d(11)
        assert np.allclose(basis.T @ basis, np.eye(11), atol=1e-12)

    def test_first_column_constant(self):
        basis = dct_basis_1d(9)
        assert np.allclose(basis[:, 0], np.sqrt(1.0 / 9))

    def test_size_one(self):
        assert np.allclose(dct_basis_1d(1), [[1.0]])

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            dct_basis_1d(0)


class TestDctBasis2d:
    def test_orthogonal(self):
        psi = dct_basis_2d(5, 4)
        assert np.allclose(psi.T @ psi, np.eye(20), atol=1e-12)

    def test_matches_fast_transform(self):
        rng = np.random.default_rng(2)
        image = rng.normal(size=(6, 7))
        psi = dct_basis_2d(6, 7)
        # y = Psi @ x with x the DCT coefficients (row-major)
        assert np.allclose(psi @ dct2(image).ravel(), image.ravel())

    def test_square_default(self):
        assert dct_basis_2d(4).shape == (16, 16)


class TestDct2BasisOperator:
    def test_synthesize_matches_matrix(self):
        rng = np.random.default_rng(3)
        basis = Dct2Basis((5, 6))
        coeffs = rng.normal(size=30)
        assert np.allclose(basis.synthesize(coeffs), basis.to_matrix() @ coeffs)

    def test_analyze_is_adjoint(self):
        rng = np.random.default_rng(4)
        basis = Dct2Basis((7, 3))
        x = rng.normal(size=21)
        y = rng.normal(size=21)
        lhs = np.dot(basis.synthesize(x), y)
        rhs = np.dot(x, basis.analyze(y))
        assert lhs == pytest.approx(rhs)

    def test_analyze_inverts_synthesize(self):
        rng = np.random.default_rng(5)
        basis = Dct2Basis((8, 8))
        x = rng.normal(size=64)
        assert np.allclose(basis.analyze(basis.synthesize(x)), x)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Dct2Basis((0, 4))


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=12),
    cols=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_transform_linear_and_isometric(rows, cols, seed):
    """dct2 is a linear isometry for any frame shape."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(rows, cols))
    b = rng.normal(size=(rows, cols))
    alpha = float(rng.normal())
    assert np.allclose(dct2(alpha * a + b), alpha * dct2(a) + dct2(b))
    assert np.linalg.norm(dct2(a)) == pytest.approx(np.linalg.norm(a))
