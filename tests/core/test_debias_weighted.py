"""Tests for the debiasing pass and weighted sampling extensions."""

import numpy as np
import pytest

from repro.core.dct import Dct2Basis, idct2
from repro.core.errors import inject_sparse_errors
from repro.core.metrics import rmse
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix, weighted_sample_indices
from repro.core.solvers import debias_on_support, solve_fista
from repro.core.strategies import WeightedSamplingStrategy


def _sparse_problem(shape=(12, 12), sparsity=10, m=90, seed=0):
    rng = np.random.default_rng(seed)
    n = shape[0] * shape[1]
    coefficients = np.zeros(n)
    support = rng.choice(n, size=sparsity, replace=False)
    coefficients[support] = rng.normal(size=sparsity) + np.sign(
        rng.normal(size=sparsity)
    )
    image = idct2(coefficients.reshape(shape))
    phi = RowSamplingMatrix.random(n, m, rng)
    operator = SensingOperator(phi, Dct2Basis(shape))
    return operator, phi.apply(image.ravel()), coefficients


class TestDebias:
    def test_reduces_shrinkage_bias(self):
        operator, b, coefficients = _sparse_problem()
        # a deliberately large lambda -> strong bias
        lam = 0.05 * float(np.max(np.abs(operator.rmatvec(b))))
        biased = solve_fista(operator, b, lam=lam)
        debiased = debias_on_support(operator, b, biased)
        error_biased = np.linalg.norm(biased.coefficients - coefficients)
        error_debiased = np.linalg.norm(debiased.coefficients - coefficients)
        assert error_debiased < error_biased

    def test_support_preserved_or_truncated(self):
        operator, b, _ = _sparse_problem(seed=1)
        result = solve_fista(operator, b)
        debiased = debias_on_support(operator, b, result, max_support=5)
        assert np.count_nonzero(debiased.coefficients) <= 5

    def test_solver_name_tagged(self):
        operator, b, _ = _sparse_problem(seed=2)
        result = solve_fista(operator, b)
        assert debias_on_support(operator, b, result).solver == "fista+debias"

    def test_empty_support_passthrough(self):
        operator, b, _ = _sparse_problem(seed=3)
        result = solve_fista(operator, b)
        result.coefficients = np.zeros(operator.n)
        assert debias_on_support(operator, b, result) is result

    def test_residual_not_worse(self):
        operator, b, _ = _sparse_problem(seed=4)
        result = solve_fista(operator, b, lam=1e-2)
        debiased = debias_on_support(operator, b, result)
        assert debiased.residual <= result.residual + 1e-9


class TestWeightedSampleIndices:
    def test_zero_weight_never_sampled(self):
        rng = np.random.default_rng(0)
        weights = np.ones(20)
        weights[:10] = 0.0
        indices = weighted_sample_indices(20, 8, weights, rng)
        assert np.all(indices >= 10)

    def test_heavier_pixels_sampled_more(self):
        rng = np.random.default_rng(1)
        weights = np.ones(100)
        weights[:50] = 10.0
        counts = np.zeros(100)
        for _ in range(200):
            counts[weighted_sample_indices(100, 10, weights, rng)] += 1
        assert counts[:50].sum() > 3 * counts[50:].sum()

    def test_exclusion_respected(self):
        rng = np.random.default_rng(2)
        indices = weighted_sample_indices(
            10, 4, np.ones(10), rng, exclude=np.array([0, 1, 2])
        )
        assert np.all(indices >= 3)

    def test_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            weighted_sample_indices(10, 4, np.ones(9), rng)
        with pytest.raises(ValueError):
            weighted_sample_indices(10, 4, -np.ones(10), rng)
        with pytest.raises(ValueError):
            weighted_sample_indices(10, 4, np.zeros(10), rng)


class TestWeightedSamplingStrategy:
    def _frame(self):
        r, c = np.mgrid[0:16, 0:16]
        return 0.5 + 0.4 * np.sin(r / 4.0) * np.cos(c / 5.0)

    def test_reconstructs_clean_frame(self):
        frame = self._frame()
        strategy = WeightedSamplingStrategy(sampling_fraction=0.6)
        out = strategy.reconstruct(frame, np.random.default_rng(0))
        assert rmse(frame, out) < 0.05

    def test_uniform_floor_one_equals_uniformish(self):
        frame = self._frame()
        strategy = WeightedSamplingStrategy(
            sampling_fraction=0.6, uniform_floor=1.0
        )
        out = strategy.reconstruct(frame, np.random.default_rng(1))
        assert rmse(frame, out) < 0.05

    def test_respects_error_mask(self):
        frame = self._frame()
        rng = np.random.default_rng(2)
        corrupted, mask = inject_sparse_errors(frame, 0.1, rng)
        strategy = WeightedSamplingStrategy(sampling_fraction=0.5)
        with_mask = strategy.reconstruct(
            corrupted, np.random.default_rng(3), error_mask=mask
        )
        without = strategy.reconstruct(corrupted, np.random.default_rng(3))
        assert rmse(frame, with_mask) < rmse(frame, without)

    def test_weights_from_prior_properties(self):
        frame = self._frame()
        weights = WeightedSamplingStrategy.weights_from_prior(frame, 0.3)
        assert weights.shape == frame.shape
        assert np.all(weights >= 0.3 - 1e-12)
        assert np.all(weights <= 1.0 + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedSamplingStrategy(uniform_floor=1.5)
        strategy = WeightedSamplingStrategy()
        with pytest.raises(ValueError):
            strategy.reconstruct(np.zeros(16), np.random.default_rng(0))
