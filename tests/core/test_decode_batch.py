"""Tests for DecodeEngine.decode_batch and the multi-RHS solver path."""

import numpy as np
import pytest

from repro import instrument
from repro.core.engine import DecodeContext, get_engine
from repro.core.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.core.solvers import batch_solver_names, solve_batch


def _frames(count=4, shape=(12, 12), seed=0):
    rng = np.random.default_rng(seed)
    r, c = np.mgrid[0:shape[0], 0:shape[1]]
    return [
        np.clip(
            np.exp(
                -((r - shape[0] / 2 - np.sin(k)) ** 2 + (c - shape[1] / 2) ** 2)
                / 8.0
            )
            + 0.02 * rng.normal(size=shape),
            0.0,
            1.0,
        )
        for k in range(count)
    ]


def _plan(shape=(12, 12), **overrides):
    options = dict(
        shape=shape, sampling_fraction=0.5, solver="fista", noise_sigma=0.01
    )
    options.update(overrides)
    return DecodeContext(**options)


def _serial_reference(frames, plan, seed=0):
    engine = get_engine()
    rng = np.random.default_rng(seed)
    return [engine.decode(f, plan, rng) for f in frames], rng


class TestBatchSerialEquivalence:
    def test_batch_matches_serial_loop_bitwise(self):
        frames = _frames()
        plan = _plan()
        reference, ref_rng = _serial_reference(frames, plan)
        rng = np.random.default_rng(0)
        batch = get_engine().decode_batch(frames, plan, rng)
        for ref, out in zip(reference, batch):
            np.testing.assert_array_equal(out, ref)
        # The batch consumed the RNG stream exactly like the loop did.
        assert rng.bit_generator.state == ref_rng.bit_generator.state

    def test_empty_batch(self):
        assert get_engine().decode_batch([], _plan(), np.random.default_rng(0)) == []

    def test_mismatched_frame_rejected(self):
        with pytest.raises(ValueError, match="does not match plan shape"):
            get_engine().decode_batch(
                [np.zeros((8, 8))], _plan((12, 12)), np.random.default_rng(0)
            )

    def test_full_output_returns_decode_results(self):
        frames = _frames(2)
        plan = _plan()
        results = get_engine().decode_batch(
            frames, plan, np.random.default_rng(0), full_output=True
        )
        for item in results:
            assert item.reconstruction.shape == plan.shape
            assert (
                item.solver_result.coefficients.size
                == plan.shape[0] * plan.shape[1]
            )

    def test_instrumentation_counts_batch(self):
        frames = _frames(3)
        plan = _plan()
        with instrument.profiled() as session:
            get_engine().decode_batch(frames, plan, np.random.default_rng(0))
        counters = session.report()["metrics"]["counters"]
        assert counters["decode.batches"] == 1
        assert counters["decode.calls"] == 3


class TestExecutorParity:
    @pytest.mark.parametrize(
        "executor",
        [SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2), "serial", 2],
    )
    def test_backends_bitwise_identical(self, executor):
        frames = _frames(3)
        plan = _plan()
        reference, _ = _serial_reference(frames, plan)
        out = get_engine().decode_batch(
            frames, plan, np.random.default_rng(0), executor=executor
        )
        for ref, got in zip(reference, out):
            np.testing.assert_array_equal(got, ref)
        if hasattr(executor, "close"):
            executor.close()


class TestSharedPhi:
    def test_shared_phi_reuses_one_pattern(self):
        frames = _frames(3)
        plan = _plan(noise_sigma=0.0)
        results = get_engine().decode_batch(
            frames,
            plan,
            np.random.default_rng(0),
            shared_phi=True,
            vectorize=False,
            full_output=True,
        )
        # Identical frames + one pattern + no noise => identical measurements.
        same = get_engine().decode_batch(
            [frames[0], frames[0]],
            plan,
            np.random.default_rng(0),
            shared_phi=True,
            vectorize=False,
            full_output=True,
        )
        np.testing.assert_array_equal(same[0].measurements, same[1].measurements)
        assert len(results) == 3

    def test_vectorized_matches_per_frame_bitwise(self):
        frames = _frames(4)
        plan = _plan()
        loop = get_engine().decode_batch(
            frames,
            plan,
            np.random.default_rng(0),
            shared_phi=True,
            vectorize=False,
        )
        fast = get_engine().decode_batch(
            frames,
            plan,
            np.random.default_rng(0),
            shared_phi=True,
            vectorize=True,
        )
        for ref, got in zip(loop, fast):
            np.testing.assert_array_equal(got, ref)

    def test_vectorize_forced_on_unbatched_solver_raises(self):
        frames = _frames(2)
        plan = _plan(solver="omp")
        with pytest.raises(ValueError, match="no vectorised"):
            get_engine().decode_batch(
                frames,
                plan,
                np.random.default_rng(0),
                shared_phi=True,
                vectorize=True,
            )

    def test_unbatched_solver_falls_back_to_per_frame(self):
        frames = _frames(2)
        plan = _plan(solver="omp")
        out = get_engine().decode_batch(
            frames, plan, np.random.default_rng(0), shared_phi=True
        )
        assert len(out) == 2
        assert all(o.shape == plan.shape for o in out)


class TestSolveBatch:
    def test_fista_registered(self):
        assert "fista" in batch_solver_names()

    def test_solve_batch_none_for_unbatched_solver(self):
        assert solve_batch("omp", _operator(_plan()), np.zeros((2, 72))) is None

    def test_solve_batch_rejects_bad_stack(self):
        with pytest.raises(ValueError):
            solve_batch("fista", _operator(_plan()), np.zeros(72))


def _operator(plan):
    from repro.core.sensing import RowSamplingMatrix

    engine = get_engine()
    n = plan.shape[0] * plan.shape[1]
    phi = RowSamplingMatrix.random(n, 72, np.random.default_rng(0))
    return engine.operator(phi, plan.shape)
