"""Tests for the shared decode engine and its operator cache.

Covers the ISSUE-3 cache contract: hit/miss accounting, the LRU bound,
thread-safety under concurrent same-shape decodes, bit-exact equality
of cached vs. uncached reconstructions under a fixed seed, and the
regression test that resampling rounds cost one cache miss per shape.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.dct import Dct2Basis
from repro.core.engine import (
    CacheEntry,
    DecodeContext,
    DecodeEngine,
    OperatorCache,
    SeparableDct2Basis,
    basis_kinds,
    get_engine,
    register_basis,
    use_engine,
)
from repro.core.sensing import RowSamplingMatrix
from repro.core.strategies import ResamplingStrategy, sample_and_reconstruct


def smooth_frame(shape, seed=0):
    rng = np.random.default_rng(seed)
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    blob = np.exp(-((r - shape[0] / 2) ** 2 + (c - shape[1] / 2) ** 2) / 8.0)
    return np.clip(blob + 0.02 * rng.normal(size=shape), 0.0, 1.0)


class TestOperatorCache:
    def test_hit_miss_accounting(self):
        engine = DecodeEngine()
        engine.entry_for((8, 8))
        stats = engine.cache.stats()
        assert stats == {
            "hits": 0, "misses": 1, "evictions": 0, "size": 1, "capacity": 32,
            "bytes": stats["bytes"],
        }
        assert stats["bytes"] > 0  # separable factors pin real memory
        engine.entry_for((8, 8))
        engine.entry_for((8, 8))
        assert engine.cache.hits == 2
        assert engine.cache.misses == 1
        engine.entry_for((8, 16))
        assert engine.cache.misses == 2
        assert len(engine.cache) == 2

    def test_distinct_basis_kinds_are_distinct_keys(self):
        engine = DecodeEngine()
        engine.entry_for((4, 8), "dct2")
        engine.entry_for((4, 8), "haar2")
        assert engine.cache.misses == 2
        assert ((4, 8), "dct2", "implicit", "row_sampling") in engine.cache
        assert ((4, 8), "haar2", "implicit", "row_sampling") in engine.cache

    def test_lru_bound_respected(self):
        engine = DecodeEngine(cache=OperatorCache(capacity=3))
        shapes = [(4, 4), (4, 5), (4, 6), (4, 7), (4, 8)]
        for shape in shapes:
            engine.entry_for(shape)
        assert len(engine.cache) == 3
        assert engine.cache.evictions == 2
        # Oldest two evicted, newest three retained.
        assert ((4, 4), "dct2", "implicit", "row_sampling") not in engine.cache
        assert ((4, 5), "dct2", "implicit", "row_sampling") not in engine.cache
        assert ((4, 8), "dct2", "implicit", "row_sampling") in engine.cache

    def test_lru_recency_ordering(self):
        engine = DecodeEngine(cache=OperatorCache(capacity=2))
        engine.entry_for((4, 4))
        engine.entry_for((4, 5))
        engine.entry_for((4, 4))  # touch: (4, 4) is now most recent
        engine.entry_for((4, 6))  # evicts (4, 5), not (4, 4)
        assert ((4, 4), "dct2", "implicit", "row_sampling") in engine.cache
        assert ((4, 5), "dct2", "implicit", "row_sampling") not in engine.cache

    def test_clear_empties_but_keeps_counters(self):
        engine = DecodeEngine()
        engine.entry_for((4, 4))
        engine.cache.clear()
        assert len(engine.cache) == 0
        assert engine.cache.misses == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            OperatorCache(capacity=0)

    def test_thread_safety_concurrent_same_shape_decodes(self):
        engine = DecodeEngine()
        frame = smooth_frame((8, 8))
        plan = DecodeContext(shape=(8, 8), sampling_fraction=0.6)

        def decode(seed):
            rng = np.random.default_rng(seed)
            return engine.decode(frame, plan, rng)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(decode, range(16)))
        for recon in results:
            assert recon.shape == (8, 8)
            assert np.all(np.isfinite(recon))
        # The shared entry was built exactly once despite the race.
        assert engine.cache.misses == 1
        assert engine.cache.hits == 15
        assert len(engine.cache) == 1

    def test_builder_called_once_per_key(self):
        cache = OperatorCache()
        calls = []

        def builder():
            calls.append(1)
            return CacheEntry(key=("k",), basis=None)

        for _ in range(5):
            cache.get_or_create(("k",), builder)
        assert len(calls) == 1


class TestDecodeContext:
    def test_frozen_and_validated(self):
        plan = DecodeContext(shape=(8, 8), sampling_fraction=0.5)
        with pytest.raises(AttributeError):
            plan.solver = "omp"
        with pytest.raises(TypeError):
            plan.solver_options["x"] = 1
        with pytest.raises(ValueError, match="sampling_fraction"):
            DecodeContext(shape=(8, 8), sampling_fraction=0.0)
        with pytest.raises(ValueError, match="noise_sigma"):
            DecodeContext(shape=(8, 8), sampling_fraction=0.5, noise_sigma=-1)
        with pytest.raises(ValueError, match="shape"):
            DecodeContext(shape=(8,), sampling_fraction=0.5)

    def test_mask_copied_and_read_only(self):
        mask = np.zeros((8, 8), dtype=bool)
        plan = DecodeContext(
            shape=(8, 8), sampling_fraction=0.5, exclude_mask=mask
        )
        mask[0, 0] = True  # caller mutation must not leak into the plan
        assert not plan.exclude_mask[0, 0]
        with pytest.raises(ValueError):
            plan.exclude_mask[0, 1] = True

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError, match="exclude_mask"):
            DecodeContext(
                shape=(8, 8),
                sampling_fraction=0.5,
                exclude_mask=np.zeros((4, 4), dtype=bool),
            )

    def test_frame_shape_checked_against_plan(self):
        plan = DecodeContext(shape=(8, 8), sampling_fraction=0.5)
        with pytest.raises(ValueError, match="plan shape"):
            DecodeEngine().decode(
                np.zeros((4, 4)), plan, np.random.default_rng(0)
            )

    def test_for_frame_convenience(self):
        frame = np.zeros((6, 10))
        plan = DecodeContext.for_frame(frame, 0.5, solver="omp")
        assert plan.shape == (6, 10)
        assert plan.solver == "omp"

    def test_starving_mask_raises(self):
        plan = DecodeContext(
            shape=(8, 8),
            sampling_fraction=0.5,
            exclude_mask=np.ones((8, 8), dtype=bool),
        )
        with pytest.raises(ValueError, match="no pixels"):
            DecodeEngine().decode(
                smooth_frame((8, 8)), plan, np.random.default_rng(0)
            )


class TestBitExactness:
    def test_cached_equals_uncached(self):
        """Cache on vs. off is a pure amortisation: same bits out."""
        frame = smooth_frame((12, 12))
        plan = DecodeContext(
            shape=(12, 12), sampling_fraction=0.6, noise_sigma=0.01
        )
        cached = DecodeEngine()
        uncached = DecodeEngine(cache=None)
        for seed in (0, 1, 2):
            a = cached.decode(frame, plan, np.random.default_rng(seed))
            b = uncached.decode(frame, plan, np.random.default_rng(seed))
            np.testing.assert_array_equal(a, b)
        assert cached.cache.misses == 1
        assert cached.cache.hits == 2

    def test_repeated_cached_decodes_same_seed_identical(self):
        frame = smooth_frame((12, 12))
        plan = DecodeContext(shape=(12, 12), sampling_fraction=0.6)
        engine = DecodeEngine()
        a = engine.decode(frame, plan, np.random.default_rng(7))
        b = engine.decode(frame, plan, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_separable_basis_matches_fft_basis(self):
        """The accelerated DCT is the same transform as the FFT one."""
        shape = (9, 13)
        fast = SeparableDct2Basis(shape)
        reference = Dct2Basis(shape)
        rng = np.random.default_rng(0)
        vec = rng.normal(size=shape[0] * shape[1])
        np.testing.assert_allclose(
            fast.synthesize(vec), reference.synthesize(vec), atol=1e-10
        )
        np.testing.assert_allclose(
            fast.analyze(vec), reference.analyze(vec), atol=1e-10
        )
        # Orthonormality: round trip is the identity.
        np.testing.assert_allclose(
            fast.analyze(fast.synthesize(vec)), vec, atol=1e-10
        )

    def test_spectral_norm_hint_used_for_row_sampling(self):
        engine = DecodeEngine()
        phi = RowSamplingMatrix.random(64, 32, np.random.default_rng(0))
        operator = engine.operator(phi, (8, 8))
        assert operator.spectral_norm() == 1.0

    def test_hint_dropped_for_dense_phi(self):
        from repro.core.sensing import gaussian_matrix

        engine = DecodeEngine()
        phi = gaussian_matrix(32, 64, np.random.default_rng(0))
        operator = engine.operator(phi, (8, 8))
        # Dense Gaussian Phi has no unit-norm guarantee: the measured
        # norm differs from 1 and must be what the solver sees.
        assert operator.spectral_norm() != 1.0


class TestEngineSingleton:
    def test_use_engine_scopes_and_restores(self):
        original = get_engine()
        scoped = DecodeEngine()
        with use_engine(scoped) as active:
            assert active is scoped
            assert get_engine() is scoped
        assert get_engine() is original

    def test_sample_and_reconstruct_routes_through_default_engine(self):
        frame = smooth_frame((8, 8))
        with use_engine(DecodeEngine()) as engine:
            sample_and_reconstruct(frame, 0.5, np.random.default_rng(0))
            sample_and_reconstruct(frame, 0.5, np.random.default_rng(1))
            assert engine.cache.misses == 1
            assert engine.cache.hits == 1


class TestResamplingHoist:
    def test_one_cache_miss_per_shape_across_rounds(self):
        """Regression: resampling rounds must not rebuild the operator."""
        frame = smooth_frame((8, 8))
        strategy = ResamplingStrategy(sampling_fraction=0.6, rounds=5)
        with use_engine(DecodeEngine()) as engine:
            strategy.reconstruct(frame, np.random.default_rng(0))
            assert engine.cache.misses == 1
            assert engine.cache.hits == 4
            # A second shape costs exactly one more miss.
            strategy.reconstruct(smooth_frame((8, 16)), np.random.default_rng(0))
            assert engine.cache.misses == 2
            assert engine.cache.hits == 4 + 4


class TestCustomBasis:
    def test_register_and_decode(self):
        class IdentityBasis:
            orthonormal = True

            def __init__(self, shape):
                self.shape = tuple(shape)
                self.n = int(np.prod(shape))

            def synthesize(self, coeffs):
                return np.asarray(coeffs, dtype=float).ravel()

            def analyze(self, pixels):
                return np.asarray(pixels, dtype=float).ravel()

        register_basis("identity-test", IdentityBasis, orthonormal=True)
        try:
            assert "identity-test" in basis_kinds()
            frame = smooth_frame((8, 8))
            plan = DecodeContext(
                shape=(8, 8), sampling_fraction=1.0, basis="identity-test"
            )
            recon = DecodeEngine().decode(
                frame, plan, np.random.default_rng(0)
            )
            # Identity basis at full sampling: recovery up to the L1
            # shrinkage bias of the solver.
            np.testing.assert_allclose(recon, frame, atol=5e-3)
        finally:
            from repro.core import engine as engine_module

            engine_module._BASIS_KINDS.pop("identity-test", None)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown basis"):
            DecodeEngine().entry_for((8, 8), "no-such-basis")

    def test_bad_kind_name_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_basis("", lambda shape: None)
