"""Tests for the sparse-error and noise injection models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import (
    SparseErrorModel,
    add_measurement_noise,
    inject_sparse_errors,
)


class TestInjectSparseErrors:
    def test_exact_corruption_count(self):
        rng = np.random.default_rng(0)
        frame = np.full((10, 10), 0.5)
        corrupted, mask = inject_sparse_errors(frame, 0.13, rng)
        assert mask.sum() == 13
        assert np.all((corrupted[mask] == 0.0) | (corrupted[mask] == 1.0))

    def test_untouched_pixels_preserved(self):
        rng = np.random.default_rng(1)
        frame = np.random.default_rng(2).random((8, 8))
        corrupted, mask = inject_sparse_errors(frame, 0.2, rng)
        assert np.array_equal(corrupted[~mask], frame[~mask])

    def test_zero_rate_is_identity(self):
        rng = np.random.default_rng(3)
        frame = np.random.default_rng(4).random((6, 6))
        corrupted, mask = inject_sparse_errors(frame, 0.0, rng)
        assert np.array_equal(corrupted, frame)
        assert mask.sum() == 0

    def test_full_rate_corrupts_everything(self):
        rng = np.random.default_rng(5)
        frame = np.full((4, 4), 0.5)
        corrupted, mask = inject_sparse_errors(frame, 1.0, rng)
        assert mask.all()

    def test_custom_stuck_values(self):
        rng = np.random.default_rng(6)
        frame = np.full((5, 5), 0.5)
        corrupted, mask = inject_sparse_errors(
            frame, 0.5, rng, low_value=-1.0, high_value=2.0
        )
        assert set(np.unique(corrupted[mask])) <= {-1.0, 2.0}

    def test_high_fraction_extremes(self):
        rng = np.random.default_rng(7)
        frame = np.full((10, 10), 0.5)
        corrupted, mask = inject_sparse_errors(frame, 0.5, rng, high_fraction=1.0)
        assert np.all(corrupted[mask] == 1.0)

    def test_invalid_rate_rejected(self):
        rng = np.random.default_rng(8)
        with pytest.raises(ValueError):
            inject_sparse_errors(np.zeros((3, 3)), 1.5, rng)
        with pytest.raises(ValueError):
            inject_sparse_errors(np.zeros((3, 3)), 0.1, rng, high_fraction=2.0)

    def test_empty_frame_rejected(self):
        rng = np.random.default_rng(20)
        with pytest.raises(ValueError):
            inject_sparse_errors(np.zeros((0, 4)), 0.1, rng)

    def test_one_pixel_frame_rate_one(self):
        rng = np.random.default_rng(21)
        corrupted, mask = inject_sparse_errors(np.full((1, 1), 0.5), 1.0, rng)
        assert mask.sum() == 1
        assert corrupted[0, 0] in (0.0, 1.0)

    def test_one_pixel_frame_low_rate_is_identity(self):
        # round(0.4 * 1) == 0: nothing to corrupt on a 1-pixel frame
        rng = np.random.default_rng(22)
        corrupted, mask = inject_sparse_errors(np.full((1, 1), 0.5), 0.4, rng)
        assert mask.sum() == 0
        assert corrupted[0, 0] == 0.5

    def test_high_fraction_rounding_deterministic(self):
        # 13 corrupted pixels at high_fraction=0.5 -> exactly round(6.5)
        rng = np.random.default_rng(23)
        frame = np.full((10, 10), 0.5)
        corrupted, mask = inject_sparse_errors(
            frame, 0.13, rng, high_fraction=0.5
        )
        highs = int((corrupted[mask] == 1.0).sum())
        assert highs == round(0.5 * 13)

    def test_high_fraction_zero_all_low(self):
        rng = np.random.default_rng(24)
        frame = np.full((6, 6), 0.5)
        corrupted, mask = inject_sparse_errors(
            frame, 0.5, rng, high_fraction=0.0
        )
        assert np.all(corrupted[mask] == 0.0)


class TestSparseErrorModel:
    def test_permanent_mask_is_stable(self):
        model = SparseErrorModel(permanent_rate=0.1, seed=0)
        frame = np.full((10, 10), 0.5)
        _, mask1 = model.corrupt(frame)
        _, mask2 = model.corrupt(frame)
        permanent = model.permanent_mask((10, 10))
        assert mask1[permanent].all()
        assert mask2[permanent].all()

    def test_transient_positions_redrawn(self):
        model = SparseErrorModel(transient_rate=0.2, seed=1)
        frame = np.full((20, 20), 0.5)
        _, mask1 = model.corrupt(frame)
        _, mask2 = model.corrupt(frame)
        assert not np.array_equal(mask1, mask2)

    def test_combined_rate_approx(self):
        model = SparseErrorModel(permanent_rate=0.05, transient_rate=0.05, seed=2)
        frame = np.full((20, 20), 0.5)
        _, mask = model.corrupt(frame)
        assert mask.sum() == pytest.approx(0.10 * 400, abs=2)

    def test_rejects_invalid_rates(self):
        with pytest.raises(ValueError):
            SparseErrorModel(permanent_rate=0.7, transient_rate=0.7)
        with pytest.raises(ValueError):
            SparseErrorModel(permanent_rate=-0.1)

    def test_corruption_values_extreme(self):
        model = SparseErrorModel(permanent_rate=0.3, seed=3)
        frame = np.full((10, 10), 0.5)
        corrupted, mask = model.corrupt(frame)
        assert set(np.unique(corrupted[mask])) <= {0.0, 1.0}


class TestMeasurementNoise:
    def test_zero_sigma_identity(self):
        rng = np.random.default_rng(9)
        values = np.arange(5.0)
        out = add_measurement_noise(values, 0.0, rng)
        assert np.array_equal(out, values)
        assert out is not values  # defensive copy

    def test_noise_statistics(self):
        rng = np.random.default_rng(10)
        values = np.zeros(20000)
        out = add_measurement_noise(values, 0.1, rng)
        assert np.std(out) == pytest.approx(0.1, rel=0.05)
        assert np.mean(out) == pytest.approx(0.0, abs=0.01)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            add_measurement_noise(np.zeros(3), -1.0, np.random.default_rng(0))


@settings(max_examples=30, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_mask_count_matches_rate(rate, seed):
    """Corrupted-pixel count is always round(rate * N)."""
    rng = np.random.default_rng(seed)
    frame = np.full((12, 12), 0.5)
    _, mask = inject_sparse_errors(frame, rate, rng)
    assert mask.sum() == int(round(rate * 144))
