"""Tests for the pluggable execution backends (repro.core.executor)."""

import pickle

import numpy as np
import pytest

from repro import instrument
from repro.core.executor import (
    ProcessExecutor,
    SerialExecutor,
    TaskError,
    TaskResult,
    ThreadExecutor,
    collect_values,
    default_workers,
    resolve_executor,
)


def _square(x):
    return x * x


def _flaky(x):
    if x == 2:
        raise ValueError("boom on two")
    return x + 10


BACKENDS = [SerialExecutor, ThreadExecutor, lambda: ProcessExecutor(2)]


class TestMapTasks:
    @pytest.mark.parametrize("make", BACKENDS)
    def test_results_in_submission_order(self, make):
        with make() as executor:
            results = executor.map_tasks(_square, range(8))
        assert [r.index for r in results] == list(range(8))
        assert [r.value for r in results] == [i * i for i in range(8)]
        assert all(r.ok for r in results)

    @pytest.mark.parametrize("make", BACKENDS)
    def test_error_capture_isolates_failures(self, make):
        with make() as executor:
            results = executor.map_tasks(_flaky, range(4))
        assert [r.ok for r in results] == [True, True, False, True]
        assert "ValueError: boom on two" in results[2].error
        assert results[2].value is None
        # Healthy siblings are unaffected.
        assert results[3].value == 13

    @pytest.mark.parametrize("make", BACKENDS)
    def test_empty_map(self, make):
        with make() as executor:
            assert executor.map_tasks(_square, []) == []

    def test_durations_recorded(self):
        results = SerialExecutor().map_tasks(_square, range(3))
        assert all(r.duration_s >= 0.0 for r in results)

    def test_unpicklable_task_fails_cleanly_on_process_pool(self):
        with ProcessExecutor(2) as executor:
            results = executor.map_tasks(lambda x: x, [1])
        assert not results[0].ok

    def test_metrics_emitted(self):
        with instrument.profiled() as session:
            SerialExecutor().map_tasks(_flaky, range(4), label="unit")
        report = session.report()
        counters = report["metrics"]["counters"]
        assert counters["executor.map_calls"] == 1
        assert counters["executor.tasks"] == 4
        assert counters["executor.task_errors"] == 1
        assert "executor.unit" in report["span_summary"]


class TestCollectValues:
    def test_unwraps_values(self):
        results = [TaskResult(index=0, value="a"), TaskResult(index=1, value="b")]
        assert collect_values(results) == ["a", "b"]

    def test_raises_naming_failed_tasks(self):
        results = [
            TaskResult(index=0, value="a"),
            TaskResult(index=1, error="ValueError: nope"),
        ]
        with pytest.raises(TaskError, match="task 1: ValueError: nope"):
            collect_values(results)


class TestResolveExecutor:
    def test_none_keeps_legacy_path(self):
        assert resolve_executor(None) is None

    def test_instance_passthrough(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_strings(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("processes"), ProcessExecutor)

    def test_worker_counts(self):
        assert isinstance(resolve_executor(1), SerialExecutor)
        pool = resolve_executor(3)
        assert isinstance(pool, ProcessExecutor)
        assert pool.workers == 3

    def test_workers_override_for_strings(self):
        assert resolve_executor("thread", workers=5).workers == 5

    @pytest.mark.parametrize("bad", [True, False, "warp-drive", 2.5])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            resolve_executor(bad)

    @pytest.mark.parametrize("count", [0, -1, -8])
    def test_rejects_nonpositive_worker_counts(self, count):
        with pytest.raises(ValueError, match="worker count must be >= 1"):
            resolve_executor(count)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_rejects_nonpositive_workers_override(self, workers):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            resolve_executor("thread", workers=workers)

    def test_unknown_string_names_accepted_forms(self):
        with pytest.raises(ValueError, match="'serial'"):
            resolve_executor("warp-drive")

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestPoolLifecycle:
    def test_close_then_reuse_rebuilds_pool(self):
        executor = ThreadExecutor(2)
        assert collect_values(executor.map_tasks(_square, [3])) == [9]
        executor.close()
        assert collect_values(executor.map_tasks(_square, [4])) == [16]
        executor.close()

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)

    def test_numpy_payloads_cross_process_boundary(self):
        frames = [np.full((4, 4), float(i)) for i in range(3)]
        with ProcessExecutor(2) as executor:
            results = collect_values(executor.map_tasks(np.sum, frames))
        assert results == [0.0, 16.0, 32.0]

    def test_task_results_picklable(self):
        result = TaskResult(index=1, value=2.0, duration_s=0.1)
        assert pickle.loads(pickle.dumps(result)) == result


def _crash_on_two(x):
    from repro.core.executor import WorkerCrash

    if x == 2:
        raise WorkerCrash("injected loss on two")
    return x * 10


class TestSupervisedExecutor:
    def test_wraps_any_backend_and_passes_clean_work_through(self):
        from repro.core.executor import SupervisedExecutor

        for inner in (SerialExecutor(), ThreadExecutor(2)):
            executor = SupervisedExecutor(inner)
            assert collect_values(
                executor.map_tasks(_square, [1, 2, 3])
            ) == [1, 4, 9]
            assert executor.pop_losses() == ()
            executor.close()

    def test_worker_crash_is_retried_not_surfaced(self):
        from repro.core.executor import SupervisedExecutor, WorkerCrash

        calls = []

        def flaky_once(x):
            calls.append(x)
            if x == 2 and calls.count(2) == 1:
                raise WorkerCrash("first attempt dies")
            return x * 10

        executor = SupervisedExecutor(SerialExecutor(), max_retries=2)
        values = collect_values(executor.map_tasks(flaky_once, [1, 2, 3]))
        assert values == [10, 20, 30]
        losses = executor.pop_losses()
        assert len(losses) == 1
        assert losses[0].kind == "crash"
        assert losses[0].index == 1
        # pop_losses drains.
        assert executor.pop_losses() == ()

    def test_exhausted_retries_surface_the_failure(self):
        from repro.core.executor import SupervisedExecutor

        executor = SupervisedExecutor(SerialExecutor(), max_retries=1)
        results = executor.map_tasks(_crash_on_two, [1, 2, 3])
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].error.startswith("WorkerCrash")
        # One loss per attempt: initial + 1 retry.
        assert len(executor.pop_losses()) == 2

    def test_hung_worker_times_out_and_unblocks_the_caller(self):
        import time as _time

        from repro.core.executor import SupervisedExecutor

        def hang(x):
            if x == 1:
                _time.sleep(0.5)
            return x

        executor = SupervisedExecutor(
            ThreadExecutor(2),
            timeout_s=0.05,
            heartbeat_s=0.01,
            max_retries=0,
        )
        start = _time.monotonic()
        results = executor.map_tasks(hang, [0, 1])
        elapsed = _time.monotonic() - start
        assert elapsed < 0.45, "timeout must beat the hang"
        assert results[0].ok
        assert not results[1].ok
        assert results[1].error.startswith("WorkerTimeout")
        assert [loss.kind for loss in executor.pop_losses()] == ["timeout"]
        executor.close()

    def test_serial_inner_flags_overruns_but_keeps_results(self):
        import time as _time

        from repro import instrument as _instrument
        from repro.core.executor import SupervisedExecutor

        def slow(x):
            _time.sleep(0.03)
            return x

        executor = SupervisedExecutor(SerialExecutor(), timeout_s=0.001)
        _instrument.enable()
        try:
            _instrument.reset()
            values = collect_values(executor.map_tasks(slow, [7]))
        finally:
            report = _instrument.report()
            _instrument.disable()
            _instrument.reset()
        assert values == [7]
        assert _instrument.counter_value(report, "executor.worker_slow") == 1

    def test_loss_counter_increments(self):
        from repro import instrument as _instrument
        from repro.core.executor import SupervisedExecutor

        executor = SupervisedExecutor(SerialExecutor(), max_retries=0)
        _instrument.enable()
        try:
            _instrument.reset()
            executor.map_tasks(_crash_on_two, [2])
        finally:
            report = _instrument.report()
            _instrument.disable()
            _instrument.reset()
        assert _instrument.counter_value(report, "executor.worker_lost") == 1
        assert (
            _instrument.counter_value(report, "executor.worker_lost.crash")
            == 1
        )

    def test_nesting_rejected(self):
        from repro.core.executor import SupervisedExecutor

        with pytest.raises(ValueError, match="nest"):
            SupervisedExecutor(SupervisedExecutor())

    def test_parameter_validation(self):
        from repro.core.executor import SupervisedExecutor

        with pytest.raises(ValueError, match="timeout_s"):
            SupervisedExecutor(timeout_s=0)
        with pytest.raises(ValueError, match="heartbeat_s"):
            SupervisedExecutor(heartbeat_s=0)
        with pytest.raises(ValueError, match="max_retries"):
            SupervisedExecutor(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_s"):
            SupervisedExecutor(backoff_s=-0.1)

    def test_loss_events_are_ordered_and_labelled(self):
        from repro.core.executor import SupervisedExecutor

        executor = SupervisedExecutor(SerialExecutor(), max_retries=0)
        executor.map_tasks(_crash_on_two, [2, 2], label="decode_batch")
        losses = executor.pop_losses()
        assert [loss.label for loss in losses] == ["decode_batch"] * 2
        assert [loss.index for loss in losses] == [0, 1]
        assert [loss.retry_round for loss in losses] == [0, 0]
