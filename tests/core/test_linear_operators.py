"""End-to-end tests for the implicit operator layer (PR 8).

Covers the :class:`~repro.core.operators.LinearOperator` contract that
the matrix-free refactor rests on: adjoint consistency (the dot-test
every iterative solver implicitly assumes), bitwise batch/serial apply
agreement, dense-vs-implicit decode agreement (documented tolerance
1e-10; measured ~1e-14), spectral-norm hints and power-iteration
caching, the multi-RHS ISTA/IHT kernels, and the operator cache's mode
keys and byte accounting.
"""

import numpy as np
import pytest

from repro.core.dct import Dct2Basis
from repro.core.engine import (
    _DENSE_MODE_MAX_N,
    DecodeContext,
    DecodeEngine,
    OPERATOR_MODES,
)
from repro.core.operators import (
    CompositeOperator,
    DenseOperator,
    LinearOperator,
    SeparableDCTOperator,
)
from repro.core.sensing import RowSamplingMatrix, gaussian_matrix
from repro.core import solvers
from repro.core.solvers.fista import solve_ista, solve_ista_batch
from repro.core.solvers.greedy import solve_iht, solve_iht_batch

ADJOINT_TOL = 1e-10
"""Documented adjoint/dense-agreement tolerance (measured ~1e-14)."""


def _operators():
    """One instance of each concrete operator class (same 6x5 problem)."""
    rng = np.random.default_rng(0)
    shape = (6, 5)
    n = shape[0] * shape[1]
    phi = RowSamplingMatrix.random(n, 12, rng)
    basis = Dct2Basis(shape)
    implicit = SeparableDCTOperator(phi, basis)
    composite = CompositeOperator(gaussian_matrix(12, n, rng), basis)
    dense = DenseOperator(implicit.to_dense(), basis=basis)
    return {"separable": implicit, "composite": composite, "dense": dense}


class TestAdjointDotTest:
    """<A x, y> == <x, A^T y> for every operator class."""

    @pytest.mark.parametrize("kind", ["separable", "composite", "dense"])
    def test_adjoint_consistency(self, kind):
        op = _operators()[kind]
        rng = np.random.default_rng(7)
        for _ in range(5):
            x = rng.normal(size=op.n)
            y = rng.normal(size=op.m)
            lhs = float(op.matvec(x) @ y)
            rhs = float(x @ op.rmatvec(y))
            assert lhs == pytest.approx(rhs, abs=ADJOINT_TOL)

    @pytest.mark.parametrize("kind", ["separable", "composite", "dense"])
    def test_applies_match_dense_matrix(self, kind):
        op = _operators()[kind]
        a = op.to_dense()
        rng = np.random.default_rng(8)
        x = rng.normal(size=op.n)
        r = rng.normal(size=op.m)
        np.testing.assert_allclose(op.matvec(x), a @ x, atol=ADJOINT_TOL)
        np.testing.assert_allclose(op.rmatvec(r), a.T @ r, atol=ADJOINT_TOL)


class TestBatchApplies:
    """Row-stack batch applies are bitwise the per-row serial applies."""

    @pytest.mark.parametrize("kind", ["separable", "composite", "dense"])
    def test_matvec_batch_bitwise(self, kind):
        op = _operators()[kind]
        rng = np.random.default_rng(9)
        stack = rng.normal(size=(4, op.n))
        batched = op.matvec_batch(stack)
        for i, row in enumerate(stack):
            np.testing.assert_array_equal(batched[i], op.matvec(row))

    @pytest.mark.parametrize("kind", ["separable", "composite", "dense"])
    def test_rmatvec_batch_bitwise(self, kind):
        op = _operators()[kind]
        rng = np.random.default_rng(10)
        stack = rng.normal(size=(4, op.m))
        batched = op.rmatvec_batch(stack)
        for i, row in enumerate(stack):
            np.testing.assert_array_equal(batched[i], op.rmatvec(row))

    def test_matmat_matches_dense_product(self):
        op = _operators()["separable"]
        rng = np.random.default_rng(11)
        block = rng.normal(size=(op.n, 3))
        np.testing.assert_allclose(
            op.matmat(block), op.to_dense() @ block, atol=ADJOINT_TOL
        )

    def test_separable_batch_is_vectorised(self):
        assert _operators()["separable"].supports_batch()
        assert _operators()["dense"].supports_batch()

    def test_batch_shape_validation(self):
        op = _operators()["separable"]
        with pytest.raises(ValueError):
            op.matvec_batch(np.zeros((2, op.n + 1)))
        with pytest.raises(ValueError):
            op.rmatvec_batch(np.zeros(op.m))


class TestSpectralNorm:
    def test_hint_short_circuits_power_iteration(self):
        op = _operators()["separable"]
        assert op.spectral_norm_hint == 1.0
        calls = {"n": 0}
        original = op.rmatvec

        def counting(r):
            calls["n"] += 1
            return original(r)

        op.rmatvec = counting
        assert op.spectral_norm() == 1.0
        assert calls["n"] == 0

    def test_power_iteration_matches_svd(self):
        rng = np.random.default_rng(12)
        a = rng.normal(size=(10, 16))
        op = DenseOperator(a)
        assert op.spectral_norm_hint is None
        sigma = op.spectral_norm(iterations=100)
        assert sigma == pytest.approx(np.linalg.norm(a, 2), rel=1e-6)

    def test_power_iteration_cached_per_key(self):
        rng = np.random.default_rng(13)
        op = DenseOperator(rng.normal(size=(8, 12)))
        first = op.spectral_norm(iterations=20, seed=3)
        calls = {"n": 0}
        original = op.rmatvec

        def counting(r):
            calls["n"] += 1
            return original(r)

        op.rmatvec = counting
        assert op.spectral_norm(iterations=20, seed=3) == first
        assert calls["n"] == 0  # cache hit, no fresh iteration
        op.spectral_norm(iterations=21, seed=3)
        assert calls["n"] == 21  # different key re-runs

    def test_default_step_uses_hint(self):
        """Gradient solvers read the hint: unit step, no power iteration."""
        op = _operators()["separable"]
        rng = np.random.default_rng(14)
        b = op.matvec(rng.normal(size=op.n))
        result = solve_ista(op, b, max_iterations=3)
        assert result.info["step"] == 1.0


class TestMultiRHSKernels:
    """solve_ista_batch / solve_iht_batch: bitwise the serial solves."""

    def _problem(self, k=3, seed=20):
        op = _operators()["separable"]
        rng = np.random.default_rng(seed)
        coeffs = np.zeros((k, op.n))
        for row in coeffs:
            row[rng.choice(op.n, size=4, replace=False)] = rng.normal(size=4)
        b_stack = op.matvec_batch(coeffs)
        return op, b_stack

    def test_ista_batch_bitwise_serial(self):
        op, b_stack = self._problem()
        batch = solve_ista_batch(op, b_stack, max_iterations=60)
        for result, b in zip(batch, b_stack):
            serial = solve_ista(op, b, max_iterations=60)
            np.testing.assert_array_equal(
                result.coefficients, serial.coefficients
            )
            assert result.iterations == serial.iterations
            assert result.converged == serial.converged
            assert result.info["lambda"] == serial.info["lambda"]

    def test_iht_batch_bitwise_serial(self):
        op, b_stack = self._problem(seed=21)
        batch = solve_iht_batch(op, b_stack, sparsity=4, max_iterations=60)
        for result, b in zip(batch, b_stack):
            serial = solve_iht(op, b, sparsity=4, max_iterations=60)
            np.testing.assert_array_equal(
                result.coefficients, serial.coefficients
            )
            assert result.converged == serial.converged

    def test_batch_solvers_registered(self):
        names = solvers.batch_solver_names()
        assert {"fista", "ista", "iht"} <= set(names)

    def test_solve_batch_dispatch(self):
        op, b_stack = self._problem(k=2, seed=22)
        results = solvers.solve_batch(
            "ista", op, b_stack, max_iterations=30
        )
        assert results is not None and len(results) == 2
        assert all(r.solver == "ista" for r in results)


class TestDenseVsImplicitDecode:
    """The dense control arm agrees with the implicit route to 1e-10."""

    def test_full_decode_agreement(self):
        shape = (16, 16)
        yy, xx = np.mgrid[0: shape[0], 0: shape[1]]
        frame = 0.5 + 0.25 * (
            np.cos(2 * np.pi * yy / shape[0])
            + np.cos(2 * np.pi * xx / shape[1])
        )
        recons = {}
        for mode in OPERATOR_MODES:
            engine = DecodeEngine(operator_mode=mode)
            plan = DecodeContext(shape=shape, sampling_fraction=0.5)
            recons[mode] = engine.decode(
                frame, plan, np.random.default_rng(42)
            )
        np.testing.assert_allclose(
            recons["implicit"], recons["dense"], atol=ADJOINT_TOL
        )

    def test_dense_mode_size_guard(self):
        engine = DecodeEngine(operator_mode="dense")
        big = (128, 128)  # 16384 cells > _DENSE_MODE_MAX_N
        assert big[0] * big[1] > _DENSE_MODE_MAX_N
        with pytest.raises(ValueError, match="dense"):
            engine.entry_for(big)


class TestCacheAccounting:
    def test_mode_is_part_of_the_cache_key(self):
        engine = DecodeEngine()
        implicit = engine.entry_for((8, 8), mode="implicit")
        dense = engine.entry_for((8, 8), mode="dense")
        assert implicit.key != dense.key
        assert implicit.mode == "implicit" and dense.mode == "dense"
        assert len(engine.cache) == 2

    def test_dense_entry_bytes_are_the_full_basis(self):
        engine = DecodeEngine()
        n = 8 * 8
        engine.entry_for((8, 8), mode="dense")
        assert engine.cache.bytes == n * n * 8

    def test_implicit_entry_is_light(self):
        engine = DecodeEngine()
        entry = engine.entry_for((8, 8), mode="implicit")
        n = 8 * 8
        # Implicit entries pin at most sqrt(N)-sized factor matrices
        # (nothing at all on the FFT path); dense pins the full N x N.
        assert entry.nbytes < n * n * 8 / 16

    def test_eviction_returns_bytes(self):
        from repro.core.engine import OperatorCache

        engine = DecodeEngine(cache=OperatorCache(capacity=1))
        engine.entry_for((8, 8), mode="dense")
        assert engine.cache.bytes > 0
        engine.entry_for((8, 8), mode="implicit")  # evicts the dense entry
        stats = engine.cache.stats()
        assert stats["evictions"] == 1
        assert stats["bytes"] == engine.cache.bytes < 64 * 64 * 8

    def test_stats_bytes_matches_attribute(self):
        engine = DecodeEngine()
        engine.entry_for((8, 8), mode="dense")
        engine.entry_for((4, 4), mode="implicit")
        assert engine.cache.stats()["bytes"] == engine.cache.bytes

    def test_clear_resets_bytes(self):
        engine = DecodeEngine()
        engine.entry_for((8, 8), mode="dense")
        engine.cache.clear()
        assert engine.cache.bytes == 0


class TestAbstractContract:
    def test_base_class_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LinearOperator((0, 4))

    def test_generic_batch_falls_back_to_loop(self):
        class Doubler(LinearOperator):
            def matvec(self, x):
                return 2.0 * np.asarray(x, dtype=float)

            def rmatvec(self, r):
                return 2.0 * np.asarray(r, dtype=float)

        op = Doubler((3, 3))
        assert not op.supports_batch()
        stack = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(op.matvec_batch(stack), 2.0 * stack)
        np.testing.assert_array_equal(op.to_dense(), 2.0 * np.eye(3))
