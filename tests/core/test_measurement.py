"""Tests for the pluggable measurement-family layer.

Covers the ISSUE-10 contract: the registry (mirroring
``register_basis``), carrier resolution, per-family adjoint dot-tests,
bitwise serial-vs-batch equality of every family's multi-RHS path, the
pinned regression that ``measurement="row_sampling"`` reproduces the
pre-refactor decode recipe bit-for-bit across the engine, resilient and
batch routes, dense-code exclusion semantics (zeroed columns with
mask-independent RNG consumption), and the capability-flag degradation
paths.
"""

import numpy as np
import pytest

from repro.core.engine import DecodeContext, DecodeEngine, use_engine
from repro.core.measurement import (
    BlockSamplingMatrix,
    BlockSamplingModel,
    DenseCodeMatrix,
    DenseCodesModel,
    MeasurementModel,
    RowSamplingModel,
    get_measurement,
    measurement_names,
    register_measurement,
    resolve_measurement_for,
)
from repro.core.sensing import RowSamplingMatrix
from repro.core.solvers import solve

FAMILIES = ("row_sampling", "dense_codes", "block_sampling")


def smooth_frame(shape, seed=0):
    rng = np.random.default_rng(seed)
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    blob = np.exp(-((r - shape[0] / 2) ** 2 + (c - shape[1] / 2) ** 2) / 8.0)
    return np.clip(blob + 0.02 * rng.normal(size=shape), 0.0, 1.0)


class TestRegistry:
    def test_default_families_registered(self):
        assert set(FAMILIES) <= set(measurement_names())

    def test_get_unknown_name_lists_vocabulary(self):
        with pytest.raises(KeyError, match="row_sampling"):
            get_measurement("nope")

    def test_register_stamps_registry_name(self):
        register_measurement("hadamard_codes", DenseCodesModel("hadamard"))
        try:
            model = get_measurement("hadamard_codes")
            assert model.name == "hadamard_codes"
            assert model.code == "hadamard"
        finally:
            from repro.core import measurement as m

            del m._MEASUREMENT_MODELS["hadamard_codes"]

    def test_register_accepts_factory(self):
        register_measurement("factory_codes", DenseCodesModel)
        try:
            assert isinstance(
                get_measurement("factory_codes"), DenseCodesModel
            )
        finally:
            from repro.core import measurement as m

            del m._MEASUREMENT_MODELS["factory_codes"]

    def test_register_rejects_non_models(self):
        with pytest.raises(TypeError, match="MeasurementModel"):
            register_measurement("bad", object())
        with pytest.raises(ValueError, match="non-empty string"):
            register_measurement("", DenseCodesModel())

    def test_dense_codes_rejects_unknown_ensemble(self):
        with pytest.raises(ValueError, match="ensemble"):
            DenseCodesModel("cauchy")


class TestCarrierResolution:
    def test_each_family_resolves_from_its_carrier(self):
        rng = np.random.default_rng(0)
        for name in FAMILIES:
            phi = get_measurement(name).draw((8, 8), 16, rng)
            assert resolve_measurement_for(phi).name == name

    def test_exact_type_beats_subclass_match(self):
        # BlockSamplingMatrix *is a* DenseCodeMatrix; resolution must
        # still recover block_sampling, not dense_codes.
        rng = np.random.default_rng(1)
        phi = get_measurement("block_sampling").draw((8, 8), 12, rng)
        assert isinstance(phi, DenseCodeMatrix)
        assert resolve_measurement_for(phi).name == "block_sampling"

    def test_raw_ndarray_has_no_family(self):
        with pytest.raises(TypeError, match="no registered"):
            resolve_measurement_for(np.eye(4))


class TestAdjointDotTests:
    """<Phi x, y> == <x, Phi^T y> for every family's carrier and the
    engine operator built from it."""

    @pytest.mark.parametrize("name", FAMILIES)
    def test_carrier_adjoint(self, name):
        rng = np.random.default_rng(2)
        shape, m = (8, 8), 24
        phi = get_measurement(name).draw(shape, m, rng)
        x = rng.normal(size=64)
        y = rng.normal(size=m)
        forward = float(np.dot(phi.apply(x), y))
        backward = float(np.dot(x, phi.adjoint(y)))
        assert forward == pytest.approx(backward, rel=1e-12)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_engine_operator_adjoint(self, name):
        rng = np.random.default_rng(3)
        shape, m = (8, 8), 24
        with use_engine(DecodeEngine()) as engine:
            phi = get_measurement(name).draw(shape, m, rng)
            operator = engine.operator(phi, shape, measurement=name)
            x = rng.normal(size=64)
            y = rng.normal(size=m)
            forward = float(np.dot(operator.matvec(x), y))
            backward = float(np.dot(x, operator.rmatvec(y)))
            assert forward == pytest.approx(backward, rel=1e-10)


class TestSerialVsBatchBitwise:
    """Each family's vectorised multi-RHS path matches serial solves."""

    @pytest.mark.parametrize("name", FAMILIES)
    def test_shared_phi_batch_matches_manual_serial(self, name):
        shape = (8, 8)
        frames = [smooth_frame(shape, seed=s) for s in range(3)]
        plan = DecodeContext(
            shape=shape, sampling_fraction=0.6, measurement=name
        )
        with use_engine(DecodeEngine()) as engine:
            batch = engine.decode_batch(
                frames, plan, np.random.default_rng(7), shared_phi=True
            )
            # Replay the exact acquisition serially: same seed draws the
            # same shared phi, then solve each frame alone.
            rng = np.random.default_rng(7)
            model = get_measurement(name)
            m = model.budget(64, int(round(0.6 * 64)), None)
            phi = model.draw(shape, m, rng)
            operator = engine.operator(phi, shape, measurement=name)
            for frame, vectorised in zip(frames, batch):
                result = solve(
                    plan.solver, operator, model.measure(frame.ravel(), phi)
                )
                serial = operator.synthesize(result.coefficients).reshape(
                    shape
                )
                np.testing.assert_array_equal(vectorised, serial)

    @pytest.mark.parametrize("name", FAMILIES)
    def test_unshared_batch_matches_serial_decode(self, name):
        shape = (8, 8)
        frames = [smooth_frame(shape, seed=s) for s in range(3)]
        plan = DecodeContext(
            shape=shape, sampling_fraction=0.6, measurement=name
        )
        with use_engine(DecodeEngine()) as engine:
            batch = engine.decode_batch(
                frames, plan, np.random.default_rng(11)
            )
            rng = np.random.default_rng(11)
            serial = [engine.decode(frame, plan, rng) for frame in frames]
        for b, s in zip(batch, serial):
            np.testing.assert_array_equal(b, s)


class TestRowSamplingRegression:
    """``measurement="row_sampling"`` is bit-identical to the
    pre-refactor decode recipe on every route."""

    def _reference_decode(self, frame, fraction, seed, exclude=None):
        """The seed repo's hard-wired recipe, reproduced literally."""
        shape = frame.shape
        n = frame.size
        rng = np.random.default_rng(seed)
        m = int(round(fraction * n))
        if exclude is not None:
            m = min(m, n - len(exclude))
        phi = RowSamplingMatrix.random(n, m, rng, exclude=exclude)
        with use_engine(DecodeEngine()) as engine:
            operator = engine.operator(phi, shape)
            result = solve("fista", operator, phi.apply(frame.ravel()))
            return operator.synthesize(result.coefficients).reshape(shape)

    def test_engine_route_pinned(self):
        frame = smooth_frame((16, 16), seed=4)
        reference = self._reference_decode(frame, 0.5, seed=21)
        plan = DecodeContext(
            shape=frame.shape,
            sampling_fraction=0.5,
            measurement="row_sampling",
        )
        with use_engine(DecodeEngine()) as engine:
            decoded = engine.decode(frame, plan, np.random.default_rng(21))
        np.testing.assert_array_equal(decoded, reference)

    def test_engine_route_pinned_with_exclusions(self):
        frame = smooth_frame((16, 16), seed=5)
        mask = np.zeros(frame.shape, dtype=bool)
        mask[0, :4] = True
        reference = self._reference_decode(
            frame, 0.5, seed=22, exclude=np.flatnonzero(mask.ravel())
        )
        plan = DecodeContext(
            shape=frame.shape, sampling_fraction=0.5, exclude_mask=mask
        )
        with use_engine(DecodeEngine()) as engine:
            decoded = engine.decode(frame, plan, np.random.default_rng(22))
        np.testing.assert_array_equal(decoded, reference)

    def test_resilient_route_pinned(self):
        from repro.resilience import resilient_sample_and_reconstruct

        frame = smooth_frame((16, 16), seed=6)
        reference = self._reference_decode(frame, 0.5, seed=23)
        outcome = resilient_sample_and_reconstruct(
            frame, 0.5, np.random.default_rng(23)
        )
        assert outcome.status == "ok"
        np.testing.assert_array_equal(outcome.frame, reference)

    def test_batch_route_pinned(self):
        frames = [smooth_frame((16, 16), seed=s) for s in (7, 8)]
        rng = np.random.default_rng(24)
        # The batch consumes one RNG stream across frames; replay it.
        rng_ref = np.random.default_rng(24)
        references = []
        for frame in frames:
            n = frame.size
            m = int(round(0.5 * n))
            phi = RowSamplingMatrix.random(n, m, rng_ref)
            with use_engine(DecodeEngine()) as engine:
                operator = engine.operator(phi, frame.shape)
                result = solve("fista", operator, phi.apply(frame.ravel()))
                references.append(
                    operator.synthesize(result.coefficients).reshape(
                        frame.shape
                    )
                )
        plan = DecodeContext(shape=(16, 16), sampling_fraction=0.5)
        with use_engine(DecodeEngine()) as engine:
            batch = engine.decode_batch(frames, plan, rng)
        for decoded, reference in zip(batch, references):
            np.testing.assert_array_equal(decoded, reference)

    def test_default_measurement_is_row_sampling(self):
        plan = DecodeContext(shape=(8, 8), sampling_fraction=0.5)
        assert plan.measurement == "row_sampling"


class TestDenseCodeExclusions:
    def test_excluded_columns_are_zero(self):
        rng = np.random.default_rng(9)
        exclude = np.array([0, 5, 17])
        phi = get_measurement("dense_codes").draw(
            (8, 8), 20, rng, exclude=exclude
        )
        assert not phi.matrix[:, exclude].any()
        kept = np.setdiff1d(np.arange(64), exclude)
        assert phi.matrix[:, kept].any(axis=0).all()

    def test_rng_consumption_is_mask_independent(self):
        exclude = np.array([3, 10])
        a = get_measurement("dense_codes").draw(
            (8, 8), 20, np.random.default_rng(10), exclude=exclude
        )
        b = get_measurement("dense_codes").draw(
            (8, 8), 20, np.random.default_rng(10)
        )
        kept = np.setdiff1d(np.arange(64), exclude)
        np.testing.assert_array_equal(
            a.matrix[:, kept], b.matrix[:, kept]
        )

    def test_block_exclusions_zero_columns(self):
        rng = np.random.default_rng(11)
        exclude = np.array([1, 2, 3])
        phi = get_measurement("block_sampling").draw(
            (8, 8), 16, rng, exclude=exclude
        )
        assert not phi.matrix[:, exclude].any()

    def test_decode_with_exclusions_runs(self):
        frame = smooth_frame((8, 8), seed=12)
        mask = np.zeros(frame.shape, dtype=bool)
        mask[0, 0] = True
        plan = DecodeContext(
            shape=frame.shape,
            sampling_fraction=0.6,
            exclude_mask=mask,
            measurement="dense_codes",
        )
        with use_engine(DecodeEngine()) as engine:
            decoded = engine.decode(frame, plan, np.random.default_rng(13))
        assert decoded.shape == frame.shape
        assert np.isfinite(decoded).all()


class TestBlockStructure:
    def test_rows_confined_to_single_blocks(self):
        model = BlockSamplingModel(block_size=4)
        phi = model.draw((8, 8), 16, np.random.default_rng(14))
        assert isinstance(phi, BlockSamplingMatrix)
        assert phi.block_shape == (4, 4)
        blocks = []
        for r0 in range(0, 8, 4):
            for c0 in range(0, 8, 4):
                rr = np.arange(r0, r0 + 4)
                cc = np.arange(c0, c0 + 4)
                blocks.append(
                    set(((rr[:, None] * 8 + cc[None, :]).ravel()).tolist())
                )
        for row in phi.matrix:
            support = set(np.flatnonzero(row).tolist())
            assert any(support <= block for block in blocks)

    def test_measurements_distributed_over_blocks(self):
        model = BlockSamplingModel(block_size=4)
        phi = model.draw((8, 8), 10, np.random.default_rng(15))
        assert phi.m == 10
        # 4 blocks, 10 measurements -> 3/3/2/2 round-robin.
        counts = []
        for r0 in range(0, 8, 4):
            for c0 in range(0, 8, 4):
                rr = np.arange(r0, r0 + 4)
                cc = np.arange(c0, c0 + 4)
                pixels = (rr[:, None] * 8 + cc[None, :]).ravel()
                counts.append(
                    int(np.sum(phi.matrix[:, pixels].any(axis=1)))
                )
        assert counts == [3, 3, 2, 2]

    def test_requires_2d_shape(self):
        with pytest.raises(ValueError, match="2-D frame shape"):
            BlockSamplingModel().draw(64, 16, np.random.default_rng(16))

    def test_block_size_validated(self):
        with pytest.raises(ValueError, match="block_size"):
            BlockSamplingModel(block_size=0)


class TestCapabilities:
    def test_weights_rejected_by_dense_families(self):
        rng = np.random.default_rng(17)
        weights = np.ones(64)
        for name in ("dense_codes", "block_sampling"):
            with pytest.raises(ValueError, match="weights"):
                get_measurement(name).draw(
                    (8, 8), 16, rng, weights=weights
                )

    def test_weights_accepted_by_row_sampling(self):
        rng = np.random.default_rng(18)
        weights = np.ones(64)
        phi = get_measurement("row_sampling").draw(
            (8, 8), 16, rng, weights=weights
        )
        assert phi.m == 16

    def test_row_budget_clamps_to_surviving_pixels(self):
        model = get_measurement("row_sampling")
        assert model.budget(64, 40, np.arange(30)) == 34
        with pytest.raises(ValueError, match="leaves no pixels"):
            model.budget(64, 40, np.arange(64))

    def test_dense_budget_keeps_m(self):
        assert get_measurement("dense_codes").budget(64, 40, np.arange(30)) == 40

    def test_base_budget_rejects_unsupported_exclusions(self):
        class NoMask(MeasurementModel):
            name = "nomask"
            supports_exclusions = False

        with pytest.raises(ValueError, match="exclusion"):
            NoMask().budget(64, 40, np.arange(3))

    def test_with_exclusions_checks_capability(self):
        class NoMask(DenseCodesModel):
            supports_exclusions = False

        register_measurement("nomask_ctx", NoMask())
        try:
            plan = DecodeContext(
                shape=(8, 8),
                sampling_fraction=0.5,
                measurement="nomask_ctx",
            )
            mask = np.zeros((8, 8), dtype=bool)
            mask[0, 0] = True
            with pytest.raises(ValueError, match="does not support"):
                plan.with_exclusions(mask)
            # An all-clear mask stays a no-op regardless of capability.
            assert plan.with_exclusions(np.zeros((8, 8), dtype=bool)) is plan
        finally:
            from repro.core import measurement as m

            del m._MEASUREMENT_MODELS["nomask_ctx"]

    def test_context_validates_measurement_name(self):
        with pytest.raises(KeyError, match="unknown measurement"):
            DecodeContext(
                shape=(8, 8),
                sampling_fraction=0.5,
                measurement="typo_family",
            )

    def test_operator_rejects_carrier_family_mismatch(self):
        rng = np.random.default_rng(19)
        phi = get_measurement("dense_codes").draw((8, 8), 16, rng)
        with use_engine(DecodeEngine()) as engine:
            with pytest.raises(TypeError, match="expects"):
                engine.operator(phi, (8, 8), measurement="row_sampling")


class TestHardwareExpansion:
    @pytest.mark.parametrize("name", FAMILIES)
    def test_combine_on_full_readings_equals_measure(self, name):
        rng = np.random.default_rng(20)
        shape = (8, 8)
        model = get_measurement(name)
        phi = model.draw(shape, 20, rng)
        frame = smooth_frame(shape, seed=21)
        acquired = {i: float(v) for i, v in enumerate(frame.ravel())}
        measurements, missing = model.combine(phi, acquired)
        assert missing == 0
        np.testing.assert_allclose(
            measurements, model.measure(frame.ravel(), phi)
        )

    @pytest.mark.parametrize("name", FAMILIES)
    def test_control_words_cover_support(self, name):
        rng = np.random.default_rng(22)
        shape = (8, 8)
        model = get_measurement(name)
        phi = model.draw(shape, 20, rng)
        words = model.control_words(phi, shape)
        assert len(words) == shape[1]
        grid = np.stack(words, axis=1)
        np.testing.assert_array_equal(
            grid, model.support_mask(phi).reshape(shape)
        )

    def test_control_words_shape_mismatch_raises(self):
        rng = np.random.default_rng(23)
        phi = get_measurement("dense_codes").draw((8, 8), 16, rng)
        with pytest.raises(ValueError, match="does not hold"):
            get_measurement("dense_codes").control_words(phi, (4, 4))

    def test_dense_support_is_full_array(self):
        rng = np.random.default_rng(24)
        model = get_measurement("dense_codes")
        phi = model.draw((8, 8), 16, rng)
        assert model.support_mask(phi).all()


class TestCacheKeys:
    def test_measurement_widens_cache_key(self):
        engine = DecodeEngine()
        engine.entry_for((8, 8), measurement="row_sampling")
        engine.entry_for((8, 8), measurement="dense_codes")
        assert engine.cache.misses == 2
        assert ((8, 8), "dct2", "implicit", "row_sampling") in engine.cache
        assert ((8, 8), "dct2", "implicit", "dense_codes") in engine.cache


class TestCarrierValidation:
    def test_dense_carrier_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            DenseCodeMatrix(matrix=np.ones(4))

    def test_dense_carrier_is_read_only(self):
        phi = DenseCodeMatrix(matrix=np.ones((2, 4)))
        with pytest.raises(ValueError):
            phi.matrix[0, 0] = 2.0

    def test_apply_and_adjoint_check_lengths(self):
        phi = DenseCodeMatrix(matrix=np.ones((2, 4)))
        with pytest.raises(ValueError, match="does not match n"):
            phi.apply(np.ones(3))
        with pytest.raises(ValueError, match="does not match m"):
            phi.adjoint(np.ones(3))
