"""Tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    classification_accuracy,
    confusion_matrix,
    normalized_error,
    psnr,
    rmse,
)


class TestRmse:
    def test_zero_for_identical(self):
        x = np.random.default_rng(0).random((5, 5))
        assert rmse(x, x) == 0.0

    def test_known_value(self):
        assert rmse(np.zeros(4), np.full(4, 2.0)) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))


class TestPsnr:
    def test_infinite_for_exact(self):
        x = np.ones((3, 3))
        assert psnr(x, x) == float("inf")

    def test_known_value(self):
        # RMSE 0.1 with peak 1 -> 20 dB
        assert psnr(np.zeros(10), np.full(10, 0.1)) == pytest.approx(20.0)

    def test_monotone_in_error(self):
        reference = np.zeros(16)
        assert psnr(reference, np.full(16, 0.01)) > psnr(reference, np.full(16, 0.1))


class TestNormalizedError:
    def test_zero_for_identical(self):
        x = np.arange(5.0)
        assert normalized_error(x, x) == 0.0

    def test_scale_invariant(self):
        rng = np.random.default_rng(1)
        a = rng.random(10) + 1.0
        b = a + 0.1
        assert normalized_error(a, b) == pytest.approx(
            normalized_error(5 * a, 5 * b)
        )

    def test_zero_reference(self):
        assert normalized_error(np.zeros(3), np.ones(3)) == pytest.approx(
            np.sqrt(3.0)
        )


class TestAccuracy:
    def test_all_correct(self):
        labels = np.array([0, 1, 2])
        assert classification_accuracy(labels, labels) == 1.0

    def test_half_correct(self):
        assert classification_accuracy(
            np.array([0, 1, 2, 3]), np.array([0, 1, 0, 0])
        ) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classification_accuracy(np.array([]), np.array([]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            classification_accuracy(np.array([0]), np.array([0, 1]))


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        labels = np.array([0, 1, 1, 2])
        matrix = confusion_matrix(labels, labels, 3)
        assert np.array_equal(matrix, np.diag([1, 2, 1]))

    def test_rows_are_true_classes(self):
        matrix = confusion_matrix(np.array([0, 0]), np.array([1, 1]), 2)
        assert matrix[0, 1] == 2
        assert matrix.sum() == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([3]), np.array([0]), 3)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([-1]), 3)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_rmse_symmetric_and_triangleish(seed):
    """RMSE is symmetric and satisfies the triangle inequality."""
    rng = np.random.default_rng(seed)
    a, b, c = rng.normal(size=(3, 20))
    assert rmse(a, b) == pytest.approx(rmse(b, a))
    assert rmse(a, c) <= rmse(a, b) + rmse(b, c) + 1e-12


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_confusion_row_sums_count_true_labels(seed):
    """Each confusion-matrix row sums to that class's sample count."""
    rng = np.random.default_rng(seed)
    true = rng.integers(0, 4, size=30)
    pred = rng.integers(0, 4, size=30)
    matrix = confusion_matrix(true, pred, 4)
    for k in range(4):
        assert matrix[k].sum() == np.sum(true == k)
