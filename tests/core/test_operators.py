"""Tests for repro.core.operators: the A = Phi @ Psi map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dct import Dct2Basis
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix, gaussian_matrix


def _make_fast_operator(shape=(6, 5), m=12, seed=0):
    rng = np.random.default_rng(seed)
    n = shape[0] * shape[1]
    phi = RowSamplingMatrix.random(n, m, rng)
    return SensingOperator(phi, Dct2Basis(shape))


class TestFastPath:
    def test_matvec_matches_dense(self):
        op = _make_fast_operator()
        dense = op.to_matrix()
        rng = np.random.default_rng(1)
        x = rng.normal(size=op.n)
        assert np.allclose(op.matvec(x), dense @ x)

    def test_rmatvec_matches_dense(self):
        op = _make_fast_operator()
        dense = op.to_matrix()
        rng = np.random.default_rng(2)
        r = rng.normal(size=op.m)
        assert np.allclose(op.rmatvec(r), dense.T @ r)

    def test_spectral_norm_is_one_for_orthonormal_basis(self):
        op = _make_fast_operator(m=20)
        assert op.spectral_norm() == pytest.approx(1.0, abs=1e-2)

    def test_shape_attributes(self):
        op = _make_fast_operator(shape=(4, 4), m=7)
        assert op.shape == (7, 16)
        assert op.m == 7 and op.n == 16


class TestDensePath:
    def test_dense_phi_identity_basis(self):
        rng = np.random.default_rng(3)
        a = gaussian_matrix(8, 20, rng)
        op = SensingOperator(a, None)
        x = rng.normal(size=20)
        assert np.allclose(op.matvec(x), a @ x)
        r = rng.normal(size=8)
        assert np.allclose(op.rmatvec(r), a.T @ r)
        assert np.allclose(op.to_matrix(), a)

    def test_dense_basis(self):
        rng = np.random.default_rng(4)
        basis = np.linalg.qr(rng.normal(size=(12, 12)))[0]
        phi = RowSamplingMatrix.random(12, 5, rng)
        op = SensingOperator(phi, basis)
        x = rng.normal(size=12)
        assert np.allclose(op.matvec(x), phi.to_matrix() @ basis @ x)

    def test_identity_basis_with_row_sampling(self):
        rng = np.random.default_rng(5)
        phi = RowSamplingMatrix.random(10, 4, rng)
        op = SensingOperator(phi, None)
        x = rng.normal(size=10)
        assert np.allclose(op.matvec(x), x[phi.indices])


class TestValidation:
    def test_basis_size_mismatch(self):
        rng = np.random.default_rng(6)
        phi = RowSamplingMatrix.random(10, 4, rng)
        with pytest.raises(ValueError):
            SensingOperator(phi, Dct2Basis((3, 3)))

    def test_non_square_dense_basis_rejected(self):
        rng = np.random.default_rng(7)
        phi = RowSamplingMatrix.random(10, 4, rng)
        with pytest.raises(ValueError):
            SensingOperator(phi, rng.normal(size=(10, 9)))

    def test_non_2d_dense_phi_rejected(self):
        with pytest.raises(ValueError):
            SensingOperator(np.zeros(5), None)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_forward_adjoint_consistency(seed):
    """<A x, v> == <x, A^T v> on the fast path."""
    rng = np.random.default_rng(seed)
    op = _make_fast_operator(shape=(5, 7), m=14, seed=seed)
    x = rng.normal(size=op.n)
    v = rng.normal(size=op.m)
    assert np.dot(op.matvec(x), v) == pytest.approx(np.dot(x, op.rmatvec(v)))
