"""Tests for the Fig. 7 evaluation pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import (
    RobustnessSweep,
    evaluate_frame,
    normalize_frame,
    process_frames,
)
from repro.core.strategies import OracleExclusionStrategy


def _frame(shape=(12, 12)):
    r, c = np.mgrid[0:shape[0], 0:shape[1]]
    return 20.0 + 10.0 * np.exp(-((r - 6.0) ** 2 + (c - 6.0) ** 2) / 18.0)


class TestNormalizeFrame:
    def test_maps_to_unit_interval(self):
        out = normalize_frame(_frame())
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_constant_frame_becomes_zero(self):
        out = normalize_frame(np.full((4, 4), 7.0))
        assert np.array_equal(out, np.zeros((4, 4)))

    def test_preserves_ordering(self):
        frame = _frame()
        out = normalize_frame(frame)
        assert np.array_equal(np.argsort(frame.ravel()), np.argsort(out.ravel()))


class TestEvaluateFrame:
    def test_outcome_fields_consistent(self):
        strategy = OracleExclusionStrategy(sampling_fraction=0.6)
        outcome = evaluate_frame(
            _frame(), 0.1, strategy, np.random.default_rng(0)
        )
        assert outcome.clean.shape == (12, 12)
        assert outcome.error_mask.sum() == round(0.1 * 144)
        assert 0.0 <= outcome.rmse_with_cs
        assert outcome.rmse_without_cs > 0.0

    def test_cs_beats_raw_under_errors(self):
        strategy = OracleExclusionStrategy(sampling_fraction=0.6)
        outcome = evaluate_frame(
            _frame(), 0.15, strategy, np.random.default_rng(1)
        )
        assert outcome.rmse_with_cs < outcome.rmse_without_cs

    def test_already_normalized_skips_scaling(self):
        frame = np.clip(_frame() / 40.0, 0, 1)
        strategy = OracleExclusionStrategy(sampling_fraction=0.6)
        outcome = evaluate_frame(
            frame, 0.0, strategy, np.random.default_rng(2),
            already_normalized=True,
        )
        assert np.array_equal(outcome.clean, frame)


class TestRobustnessSweep:
    def test_grid_size(self):
        sweep = RobustnessSweep(
            sampling_fractions=(0.5, 0.6), error_rates=(0.0, 0.1)
        )
        frames = np.stack([_frame(), _frame() + 1.0])
        points = sweep.run(frames)
        assert len(points) == 4
        assert {(p.sampling_fraction, p.error_rate) for p in points} == {
            (0.5, 0.0), (0.5, 0.1), (0.6, 0.0), (0.6, 0.1),
        }

    def test_rmse_grows_with_error_rate_without_cs(self):
        sweep = RobustnessSweep(sampling_fractions=(0.5,), error_rates=(0.0, 0.2))
        points = sweep.run(np.stack([_frame()]))
        by_rate = {p.error_rate: p for p in points}
        assert by_rate[0.2].rmse_without_cs > by_rate[0.0].rmse_without_cs

    def test_table_requires_run(self):
        sweep = RobustnessSweep()
        with pytest.raises(RuntimeError):
            sweep.table()

    def test_table_renders_all_points(self):
        sweep = RobustnessSweep(sampling_fractions=(0.5,), error_rates=(0.0,))
        sweep.run(np.stack([_frame()]))
        table = sweep.table()
        assert "RMSE w/ CS" in table
        assert len(table.splitlines()) == 2

    def test_rejects_wrong_rank(self):
        sweep = RobustnessSweep()
        with pytest.raises(ValueError):
            sweep.run(_frame())

    @pytest.mark.parametrize("executor", ["serial", 2])
    def test_executor_grid_matches_sequential(self, executor):
        frames = np.stack([_frame(), _frame() + 0.5])
        sequential = RobustnessSweep(
            sampling_fractions=(0.5, 0.6), error_rates=(0.0, 0.1)
        ).run(frames)
        distributed = RobustnessSweep(
            sampling_fractions=(0.5, 0.6), error_rates=(0.0, 0.1)
        ).run(frames, executor=executor)
        assert len(distributed) == len(sequential)
        for ref, got in zip(sequential, distributed):
            assert got.sampling_fraction == ref.sampling_fraction
            assert got.error_rate == ref.error_rate
            assert got.rmse_with_cs == ref.rmse_with_cs
            assert got.rmse_without_cs == ref.rmse_without_cs

    def test_executor_run_populates_table(self):
        sweep = RobustnessSweep(sampling_fractions=(0.5,), error_rates=(0.0,))
        sweep.run(np.stack([_frame()]), executor="serial")
        assert "RMSE w/ CS" in sweep.table()


class TestProcessFrames:
    def test_shapes_preserved(self):
        frames = np.stack([normalize_frame(_frame())] * 3)
        strategy = OracleExclusionStrategy(sampling_fraction=0.6)
        corrupted, reconstructed = process_frames(frames, 0.1, strategy, seed=0)
        assert corrupted.shape == frames.shape
        assert reconstructed.shape == frames.shape

    def test_deterministic_given_seed(self):
        frames = np.stack([normalize_frame(_frame())])
        strategy = OracleExclusionStrategy(sampling_fraction=0.6)
        a = process_frames(frames, 0.1, strategy, seed=7)
        b = process_frames(frames, 0.1, strategy, seed=7)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_rejects_wrong_rank(self):
        strategy = OracleExclusionStrategy()
        with pytest.raises(ValueError):
            process_frames(_frame(), 0.1, strategy)
