"""Tests for robust PCA and outlier detection."""

import numpy as np
import pytest

from repro.core.rpca import detect_outliers, rpca


def _low_rank_plus_sparse(p=40, q=30, rank=3, outliers=30, seed=0):
    rng = np.random.default_rng(seed)
    low = rng.normal(size=(p, rank)) @ rng.normal(size=(rank, q))
    sparse = np.zeros((p, q))
    positions = rng.choice(p * q, size=outliers, replace=False)
    sparse.ravel()[positions] = rng.choice([-8.0, 8.0], size=outliers)
    return low, sparse


class TestRpca:
    def test_separates_low_rank_and_sparse(self):
        low, sparse = _low_rank_plus_sparse()
        result = rpca(low + sparse)
        assert result.converged
        assert np.linalg.norm(result.low_rank - low) / np.linalg.norm(low) < 0.05
        assert np.linalg.norm(result.sparse - sparse) / np.linalg.norm(sparse) < 0.1

    def test_rank_estimate_close(self):
        low, sparse = _low_rank_plus_sparse(rank=2, seed=1)
        result = rpca(low + sparse)
        assert 1 <= result.rank <= 6

    def test_zero_matrix(self):
        result = rpca(np.zeros((5, 5)))
        assert result.converged
        assert np.array_equal(result.low_rank, np.zeros((5, 5)))

    def test_pure_low_rank_has_small_sparse_part(self):
        low, _ = _low_rank_plus_sparse(outliers=0, seed=2)
        result = rpca(low)
        assert np.linalg.norm(result.sparse) < 0.05 * np.linalg.norm(low)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            rpca(np.zeros(5))

    def test_decomposition_sums_to_input(self):
        low, sparse = _low_rank_plus_sparse(seed=3)
        data = low + sparse
        result = rpca(data, tolerance=1e-8)
        assert np.linalg.norm(data - result.low_rank - result.sparse) < 1e-5 * np.linalg.norm(data)


class TestDetectOutliers:
    def test_finds_stuck_pixels_in_frame_stack(self):
        rng = np.random.default_rng(4)
        r, c = np.mgrid[0:12, 0:12]
        base = 0.5 + 0.3 * np.sin(r / 3.0) * np.cos(c / 4.0)
        frames = np.stack([np.clip(base + 0.01 * k, 0, 1) for k in range(8)])
        corrupted = frames.copy()
        true_mask = np.zeros_like(frames, dtype=bool)
        for k in range(8):
            hits = rng.choice(144, size=10, replace=False)
            flat = corrupted[k].ravel()
            flat[hits] = rng.choice([0.0, 1.0], size=10)
            true_mask[k].ravel()[hits] = True
        detected = detect_outliers(corrupted, threshold=0.15)
        # most injected outliers are flagged, few healthy pixels are
        recall = detected[true_mask].mean()
        false_rate = detected[~true_mask].mean()
        assert recall > 0.6
        assert false_rate < 0.1

    def test_single_frame_accepted(self):
        frame = np.random.default_rng(5).random((8, 8))
        mask = detect_outliers(frame)
        assert mask.shape == (8, 8)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            detect_outliers(np.zeros((2, 2, 2, 2)))

    def test_clean_stack_flags_almost_nothing(self):
        r, c = np.mgrid[0:10, 0:10]
        base = 0.5 + 0.3 * np.sin(r / 3.0)
        frames = np.stack([base + 0.005 * k for k in range(6)])
        detected = detect_outliers(frames, threshold=0.15)
        assert detected.mean() < 0.02
