"""Tests for repro.core.sensing: Phi_M and driver control words."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sensing import (
    RowSamplingMatrix,
    bernoulli_matrix,
    column_control_words,
    gaussian_matrix,
    sample_indices,
)


class TestSampleIndices:
    def test_returns_sorted_unique(self):
        rng = np.random.default_rng(0)
        idx = sample_indices(100, 40, rng)
        assert len(idx) == 40
        assert np.array_equal(idx, np.sort(np.unique(idx)))

    def test_respects_exclusions(self):
        rng = np.random.default_rng(1)
        exclude = np.arange(0, 50)
        idx = sample_indices(100, 30, rng, exclude=exclude)
        assert np.all(idx >= 50)

    def test_rejects_overdraw_after_exclusion(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            sample_indices(10, 6, rng, exclude=np.arange(5))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sample_indices(10, -1, np.random.default_rng(0))


class TestRowSamplingMatrix:
    def test_apply_selects_entries(self):
        phi = RowSamplingMatrix(n=6, indices=np.array([1, 4]))
        y = np.arange(6.0)
        assert np.array_equal(phi.apply(y), [1.0, 4.0])

    def test_adjoint_scatters(self):
        phi = RowSamplingMatrix(n=5, indices=np.array([0, 3]))
        out = phi.adjoint(np.array([2.0, 7.0]))
        assert np.array_equal(out, [2.0, 0.0, 0.0, 7.0, 0.0])

    def test_to_matrix_rows_of_identity(self):
        phi = RowSamplingMatrix(n=4, indices=np.array([2, 0]))
        dense = phi.to_matrix()
        identity = np.eye(4)
        for row, index in zip(dense, phi.indices):
            assert np.array_equal(row, identity[index])

    def test_each_column_has_at_most_one_one(self):
        rng = np.random.default_rng(3)
        phi = RowSamplingMatrix.random(50, 25, rng)
        dense = phi.to_matrix()
        assert np.all(dense.sum(axis=0) <= 1.0)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RowSamplingMatrix(n=5, indices=np.array([1, 1]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RowSamplingMatrix(n=5, indices=np.array([5]))

    def test_apply_checks_length(self):
        phi = RowSamplingMatrix(n=5, indices=np.array([1]))
        with pytest.raises(ValueError):
            phi.apply(np.zeros(4))
        with pytest.raises(ValueError):
            phi.adjoint(np.zeros(2))

    def test_random_avoids_excluded(self):
        rng = np.random.default_rng(4)
        exclude = np.array([0, 1, 2, 3])
        phi = RowSamplingMatrix.random(20, 10, rng, exclude=exclude)
        assert not set(exclude) & set(phi.indices)


class TestDenseMatrices:
    def test_gaussian_column_norms_near_one(self):
        rng = np.random.default_rng(5)
        a = gaussian_matrix(400, 30, rng)
        norms = np.linalg.norm(a, axis=0)
        assert np.all(np.abs(norms - 1.0) < 0.25)

    def test_bernoulli_unit_columns(self):
        rng = np.random.default_rng(6)
        a = bernoulli_matrix(16, 8, rng)
        assert np.allclose(np.linalg.norm(a, axis=0), 1.0)
        assert np.allclose(np.abs(a), 0.25)

    def test_reject_bad_shapes(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            gaussian_matrix(0, 5, rng)
        with pytest.raises(ValueError):
            bernoulli_matrix(5, 0, rng)


class TestColumnControlWords:
    def test_words_cover_exactly_the_sampled_pixels(self):
        rng = np.random.default_rng(8)
        shape = (6, 5)
        phi = RowSamplingMatrix.random(30, 13, rng)
        words = column_control_words(phi, shape)
        assert len(words) == 5
        recovered = []
        for c, word in enumerate(words):
            for r in np.flatnonzero(word):
                recovered.append(r * 5 + c)
        assert sorted(recovered) == sorted(phi.indices.tolist())

    def test_shape_mismatch_rejected(self):
        phi = RowSamplingMatrix(n=30, indices=np.array([0]))
        with pytest.raises(ValueError):
            column_control_words(phi, (4, 4))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=60),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    data=st.data(),
)
def test_property_apply_adjoint_identity(n, seed, data):
    """<Phi x, v> == <x, Phi^T v> for every sampled matrix."""
    m = data.draw(st.integers(min_value=1, max_value=n))
    rng = np.random.default_rng(seed)
    phi = RowSamplingMatrix.random(n, m, rng)
    x = rng.normal(size=n)
    v = rng.normal(size=m)
    assert np.dot(phi.apply(x), v) == pytest.approx(np.dot(x, phi.adjoint(v)))
