"""Tests for the CS decoders (Eq. 9 solvers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dct import Dct2Basis, idct2
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix
from repro.core.solvers import (
    default_lambda,
    hard_threshold,
    soft_threshold,
    solve,
    solve_basis_pursuit,
    solve_cosamp,
    solve_fista,
    solve_iht,
    solve_ista,
    solve_omp,
    solver_names,
)


def _sparse_problem(shape=(12, 12), sparsity=12, m=90, seed=0):
    """A K-sparse-in-DCT image with enough random measurements."""
    rng = np.random.default_rng(seed)
    n = shape[0] * shape[1]
    coefficients = np.zeros(n)
    support = rng.choice(n, size=sparsity, replace=False)
    coefficients[support] = rng.normal(size=sparsity) + np.sign(
        rng.normal(size=sparsity)
    )
    image = idct2(coefficients.reshape(shape))
    phi = RowSamplingMatrix.random(n, m, rng)
    operator = SensingOperator(phi, Dct2Basis(shape))
    b = phi.apply(image.ravel())
    return operator, b, coefficients, image


class TestBasisPursuit:
    def test_exact_recovery(self):
        operator, b, coefficients, _ = _sparse_problem()
        result = solve_basis_pursuit(operator, b)
        assert result.converged
        assert np.allclose(result.coefficients, coefficients, atol=1e-6)

    def test_residual_near_zero(self):
        operator, b, _, _ = _sparse_problem(seed=1)
        result = solve_basis_pursuit(operator, b)
        assert result.residual < 1e-6

    def test_rejects_wrong_measurement_shape(self):
        operator, b, _, _ = _sparse_problem()
        with pytest.raises(ValueError):
            solve_basis_pursuit(operator, b[:-1])


class TestFista:
    def test_recovers_sparse_signal(self):
        operator, b, coefficients, _ = _sparse_problem(seed=2)
        result = solve_fista(operator, b)
        assert np.linalg.norm(result.coefficients - coefficients) < 1e-2

    def test_continuation_beats_plain_small_lambda(self):
        operator, b, coefficients, _ = _sparse_problem(seed=3)
        lam = 1e-8
        plain = solve_fista(
            operator, b, lam=lam, continuation_stages=1, max_iterations=60
        )
        annealed = solve_fista(
            operator, b, lam=lam, continuation_stages=6, max_iterations=60
        )
        error_plain = np.linalg.norm(plain.coefficients - coefficients)
        error_annealed = np.linalg.norm(annealed.coefficients - coefficients)
        assert error_annealed < error_plain

    def test_reports_stage_count(self):
        operator, b, _, _ = _sparse_problem(seed=4)
        result = solve_fista(operator, b, continuation_stages=4)
        assert result.info["stages"] == 4

    def test_rejects_bad_stage_count(self):
        operator, b, _, _ = _sparse_problem()
        with pytest.raises(ValueError):
            solve_fista(operator, b, continuation_stages=0)

    def test_large_lambda_gives_zero(self):
        operator, b, _, _ = _sparse_problem(seed=5)
        lam = 10.0 * float(np.max(np.abs(operator.rmatvec(b))))
        result = solve_fista(operator, b, lam=lam)
        assert np.allclose(result.coefficients, 0.0)


class TestIsta:
    def test_satisfies_bpdn_optimality(self):
        """At convergence, the BPDN subgradient conditions hold:
        |A^T(Ax-b)|_inf <= lam (+tol), with equality-signed residual
        correlation on the support."""
        operator, b, _, _ = _sparse_problem(seed=6, sparsity=8)
        lam = 1e-3 * float(np.max(np.abs(operator.rmatvec(b))))
        result = solve_ista(operator, b, lam=lam, max_iterations=6000,
                            tolerance=1e-10)
        gradient = operator.rmatvec(operator.matvec(result.coefficients) - b)
        assert np.max(np.abs(gradient)) <= lam * (1 + 1e-3)
        support = result.coefficients != 0
        assert np.allclose(
            gradient[support],
            -lam * np.sign(result.coefficients[support]),
            atol=lam * 1e-2,
        )

    def test_objective_decreases(self):
        operator, b, _, _ = _sparse_problem(seed=7)
        lam = default_lambda(operator, b)

        def objective(x):
            return 0.5 * np.sum((operator.matvec(x) - b) ** 2) + lam * np.sum(
                np.abs(x)
            )

        r5 = solve_ista(operator, b, lam=lam, max_iterations=5)
        r50 = solve_ista(operator, b, lam=lam, max_iterations=50)
        assert objective(r50.coefficients) <= objective(r5.coefficients) + 1e-12


class TestGreedy:
    def test_omp_exact_on_true_sparsity(self):
        operator, b, coefficients, _ = _sparse_problem(seed=8)
        result = solve_omp(operator, b, sparsity=12)
        assert np.allclose(result.coefficients, coefficients, atol=1e-8)

    def test_omp_support_size_bounded(self):
        operator, b, _, _ = _sparse_problem(seed=9)
        result = solve_omp(operator, b, sparsity=5)
        assert np.count_nonzero(result.coefficients) <= 5

    def test_cosamp_exact(self):
        operator, b, coefficients, _ = _sparse_problem(seed=10)
        result = solve_cosamp(operator, b, sparsity=12)
        assert np.allclose(result.coefficients, coefficients, atol=1e-6)

    def test_iht_recovers(self):
        operator, b, coefficients, _ = _sparse_problem(seed=11, sparsity=8)
        result = solve_iht(operator, b, sparsity=8, max_iterations=500)
        assert np.linalg.norm(result.coefficients - coefficients) < 1e-4

    def test_sparsity_validation(self):
        operator, b, _, _ = _sparse_problem()
        for solver in (solve_omp, solve_cosamp, solve_iht):
            with pytest.raises(ValueError):
                solver(operator, b, sparsity=0)


class TestRegistry:
    def test_all_names_dispatch(self):
        operator, b, coefficients, _ = _sparse_problem(seed=12)
        expected = {"bp": "basis_pursuit"}
        for name in solver_names():
            result = solve(name, operator, b, sparsity=12)
            assert result.solver == expected.get(name, name)
            assert result.coefficients.shape == (operator.n,)

    def test_unknown_name_rejected(self):
        operator, b, _, _ = _sparse_problem()
        with pytest.raises(ValueError):
            solve("magic", operator, b)

    def test_greedy_defaults_sparsity_from_m(self):
        operator, b, _, _ = _sparse_problem(seed=13)
        result = solve("omp", operator, b)
        assert result.info["support_size"] <= operator.m // 2


class TestThresholds:
    def test_soft_threshold_shrinks_toward_zero(self):
        x = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        out = soft_threshold(x, 1.0)
        assert np.array_equal(out, [-2.0, 0.0, 0.0, 0.0, 2.0])

    def test_hard_threshold_keeps_top_k(self):
        x = np.array([1.0, -5.0, 3.0, 0.1])
        out = hard_threshold(x, 2)
        assert np.array_equal(out, [0.0, -5.0, 3.0, 0.0])

    def test_hard_threshold_edge_cases(self):
        x = np.array([1.0, 2.0])
        assert np.array_equal(hard_threshold(x, 0), [0.0, 0.0])
        assert np.array_equal(hard_threshold(x, 5), x)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    threshold=st.floats(min_value=0, max_value=50, allow_nan=False),
)
def test_property_soft_threshold_is_proximal(values, threshold):
    """Soft threshold never increases magnitude and preserves sign."""
    x = np.array(values)
    out = soft_threshold(x, threshold)
    assert np.all(np.abs(out) <= np.abs(x) + 1e-12)
    nonzero = out != 0
    assert np.all(np.sign(out[nonzero]) == np.sign(x[nonzero]))


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    k=st.integers(min_value=0, max_value=25),
)
def test_property_hard_threshold_support(seed, k):
    """Hard threshold keeps exactly min(k, n) of the largest entries."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=20)
    out = hard_threshold(x, k)
    expected_support = min(k, 20)
    assert np.count_nonzero(out) == expected_support
    if 0 < k < 20:
        kept_min = np.min(np.abs(out[out != 0]))
        dropped_max = np.max(np.abs(x[out == 0]))
        assert kept_min >= dropped_max - 1e-12
