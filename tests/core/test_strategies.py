"""Tests for the robust sampling strategies (Sec. 4.2 / 4.3)."""

import numpy as np
import pytest

from repro.core.errors import inject_sparse_errors
from repro.core.metrics import rmse
from repro.core.strategies import (
    DecodeResult,
    NaiveStrategy,
    OracleExclusionStrategy,
    ResamplingStrategy,
    RpcaExclusionStrategy,
    sample_and_reconstruct,
    validate_decode_inputs,
)


def _smooth_frame(shape=(16, 16)):
    r, c = np.mgrid[0:shape[0], 0:shape[1]]
    return 0.5 + 0.4 * np.sin(r / 4.0) * np.cos(c / 5.0)


class TestSampleAndReconstruct:
    def test_reconstructs_smooth_frame(self):
        frame = _smooth_frame()
        rng = np.random.default_rng(0)
        recon = sample_and_reconstruct(frame, 0.6, rng)
        assert rmse(frame, recon) < 0.02

    def test_exclusion_avoids_bad_pixels(self):
        frame = _smooth_frame()
        rng = np.random.default_rng(1)
        corrupted, mask = inject_sparse_errors(frame, 0.15, rng)
        with_exclusion = sample_and_reconstruct(
            corrupted, 0.5, np.random.default_rng(2), exclude_mask=mask
        )
        without = sample_and_reconstruct(
            corrupted, 0.5, np.random.default_rng(2)
        )
        assert rmse(frame, with_exclusion) < rmse(frame, without)

    def test_noise_degrades_gracefully(self):
        frame = _smooth_frame()
        clean = sample_and_reconstruct(frame, 0.6, np.random.default_rng(3))
        noisy = sample_and_reconstruct(
            frame, 0.6, np.random.default_rng(3), noise_sigma=0.05
        )
        assert rmse(frame, noisy) > rmse(frame, clean)
        assert rmse(frame, noisy) < 0.2

    def test_validation(self):
        frame = _smooth_frame()
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            sample_and_reconstruct(frame, 0.0, rng)
        with pytest.raises(ValueError):
            sample_and_reconstruct(frame, 1.5, rng)
        with pytest.raises(ValueError):
            sample_and_reconstruct(np.zeros(16), 0.5, rng)
        with pytest.raises(ValueError):
            sample_and_reconstruct(
                frame, 0.5, rng, exclude_mask=np.ones((16, 16), dtype=bool)
            )

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            sample_and_reconstruct(
                _smooth_frame(),
                0.5,
                np.random.default_rng(5),
                exclude_mask=np.zeros((4, 4), dtype=bool),
            )

    def test_nonfinite_frame_rejected(self):
        frame = _smooth_frame()
        frame[3, 3] = np.nan
        with pytest.raises(ValueError, match="NaN/Inf"):
            sample_and_reconstruct(frame, 0.5, np.random.default_rng(13))
        frame[3, 3] = np.inf
        with pytest.raises(ValueError, match="NaN/Inf"):
            sample_and_reconstruct(frame, 0.5, np.random.default_rng(13))

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError, match="noise_sigma"):
            sample_and_reconstruct(
                _smooth_frame(), 0.5, np.random.default_rng(14),
                noise_sigma=-0.1,
            )

    def test_full_output_returns_decode_result(self):
        frame = _smooth_frame()
        result = sample_and_reconstruct(
            frame, 0.6, np.random.default_rng(15), full_output=True
        )
        assert isinstance(result, DecodeResult)
        assert result.reconstruction.shape == frame.shape
        assert result.solver_result.solver == "fista"
        assert result.measurements.shape == (round(0.6 * frame.size),)
        assert np.isfinite(result.solver_result.residual)


class TestValidateDecodeInputs:
    def test_accepts_and_coerces(self):
        out = validate_decode_inputs(np.zeros((4, 4), dtype=int), 0.5)
        assert out.dtype == float

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            validate_decode_inputs(np.zeros(16), 0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_decode_inputs(np.zeros((0, 4)), 0.5)

    def test_rejects_bad_fraction(self):
        for fraction in (0.0, -0.2, 1.01):
            with pytest.raises(ValueError):
                validate_decode_inputs(np.zeros((4, 4)), fraction)

    def test_fraction_one_allowed(self):
        validate_decode_inputs(np.zeros((4, 4)), 1.0)


class TestOracleStrategy:
    def test_requires_mask(self):
        strategy = OracleExclusionStrategy()
        with pytest.raises(ValueError):
            strategy.reconstruct(_smooth_frame(), np.random.default_rng(0))

    def test_beats_naive_under_errors(self):
        frame = _smooth_frame()
        rng = np.random.default_rng(6)
        corrupted, mask = inject_sparse_errors(frame, 0.12, rng)
        oracle = OracleExclusionStrategy(sampling_fraction=0.5)
        naive = NaiveStrategy(sampling_fraction=0.5)
        r_oracle = oracle.reconstruct(
            corrupted, np.random.default_rng(7), error_mask=mask
        )
        r_naive = naive.reconstruct(corrupted, np.random.default_rng(7))
        assert rmse(frame, r_oracle) < rmse(frame, r_naive)


class TestResamplingStrategy:
    def test_median_beats_single_round(self):
        frame = _smooth_frame()
        rng = np.random.default_rng(8)
        corrupted, _ = inject_sparse_errors(frame, 0.08, rng)
        single = NaiveStrategy(sampling_fraction=0.5)
        multi = ResamplingStrategy(sampling_fraction=0.5, rounds=8)
        errors_single = [
            rmse(frame, single.reconstruct(corrupted, np.random.default_rng(s)))
            for s in range(4)
        ]
        error_multi = rmse(
            frame, multi.reconstruct(corrupted, np.random.default_rng(0))
        )
        assert error_multi < np.mean(errors_single)

    def test_mean_aggregate_supported(self):
        frame = _smooth_frame((8, 8))
        strategy = ResamplingStrategy(sampling_fraction=0.6, rounds=3, aggregate="mean")
        out = strategy.reconstruct(frame, np.random.default_rng(9))
        assert out.shape == frame.shape

    def test_validation(self):
        with pytest.raises(ValueError):
            ResamplingStrategy(rounds=0)
        with pytest.raises(ValueError):
            ResamplingStrategy(aggregate="mode")

    @pytest.mark.parametrize("executor", ["serial", "thread", 2])
    def test_executor_rounds_bitwise_identical(self, executor):
        """Draws stay sequential, so every backend matches the default."""
        frame = _smooth_frame()
        corrupted, _ = inject_sparse_errors(
            frame, 0.08, np.random.default_rng(8)
        )
        reference = ResamplingStrategy(
            sampling_fraction=0.5, rounds=4
        ).reconstruct(corrupted, np.random.default_rng(0))
        parallel = ResamplingStrategy(
            sampling_fraction=0.5, rounds=4, executor=executor
        ).reconstruct(corrupted, np.random.default_rng(0))
        np.testing.assert_array_equal(parallel, reference)


class TestRpcaStrategy:
    def test_uses_stack_context(self):
        frame = _smooth_frame()
        rng = np.random.default_rng(10)
        stack = np.stack([frame + 0.01 * k for k in range(6)])
        corrupted = stack.copy()
        for k in range(6):
            corrupted[k], _ = inject_sparse_errors(stack[k], 0.1, rng)
        strategy = RpcaExclusionStrategy(sampling_fraction=0.5)
        recon = strategy.reconstruct(
            corrupted[2], np.random.default_rng(11),
            frame_stack=corrupted, frame_index=2,
        )
        naive = NaiveStrategy(sampling_fraction=0.5)
        recon_naive = naive.reconstruct(corrupted[2], np.random.default_rng(11))
        assert rmse(stack[2], recon) < rmse(stack[2], recon_naive)

    def test_single_frame_fallback(self):
        frame = _smooth_frame((8, 8))
        strategy = RpcaExclusionStrategy(sampling_fraction=0.7)
        out = strategy.reconstruct(frame, np.random.default_rng(12))
        assert out.shape == frame.shape

    def test_detect_returns_mask_per_frame(self):
        stack = np.stack([_smooth_frame((8, 8))] * 4)
        strategy = RpcaExclusionStrategy()
        masks = strategy.detect(stack)
        assert masks.shape == stack.shape
        assert masks.dtype == bool
