"""Tests for the Eq. (1)/(2) theory helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    best_k_term,
    error_bound,
    mutual_coherence,
    recoverable_sparsity,
    required_measurements,
    significant_coefficients,
    sparsity_fraction,
)


class TestRequiredMeasurements:
    def test_formula_at_midpoint(self):
        # K = N/2 -> K log 2 ~ 0.35 N, clamped at least K
        n = 1024
        m = required_measurements(512, n)
        assert 512 <= m <= n

    def test_monotone_in_sparsity(self):
        n = 256
        values = [required_measurements(k, n) for k in (4, 16, 64, 128)]
        assert values == sorted(values)

    def test_full_sparsity_needs_all(self):
        assert required_measurements(100, 100) == 100

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            required_measurements(0, 10)
        with pytest.raises(ValueError):
            required_measurements(11, 10)


class TestRecoverableSparsity:
    def test_inverse_of_required(self):
        n = 256
        for k in (4, 10, 30):
            m = required_measurements(k, n)
            assert recoverable_sparsity(m, n) >= k

    def test_small_budget(self):
        assert recoverable_sparsity(1, 100) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            recoverable_sparsity(0, 10)


class TestBestKTerm:
    def test_keeps_largest(self):
        x = np.array([0.1, -5.0, 2.0, 0.0])
        out = best_k_term(x, 2)
        assert np.array_equal(out, [0.0, -5.0, 2.0, 0.0])

    def test_k_zero(self):
        assert np.array_equal(best_k_term(np.ones(3), 0), np.zeros(3))

    def test_preserves_shape(self):
        x = np.random.default_rng(0).normal(size=(4, 5))
        assert best_k_term(x, 3).shape == (4, 5)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            best_k_term(np.ones(3), -1)


class TestErrorBound:
    def test_zero_noise_k_sparse_gives_zero(self):
        x = np.zeros(100)
        x[:5] = 1.0
        terms = error_bound(x, m=50, noise=0.0, sparsity=5)
        assert terms["total"] == 0.0

    def test_measurement_term_scaling(self):
        x = np.ones(100)
        t1 = error_bound(x, m=25, noise=1.0, sparsity=100)
        t2 = error_bound(x, m=100, noise=1.0, sparsity=100)
        assert t1["measurement_term"] == pytest.approx(2.0 * t2["measurement_term"])

    def test_approximation_term_is_tail_l1(self):
        x = np.array([10.0, 1.0, 1.0, 1.0, 1.0])
        terms = error_bound(x, m=3, noise=0.0, sparsity=1)
        assert terms["approximation_term"] == pytest.approx(4.0 / 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            error_bound(np.ones(10), m=0, noise=0.0, sparsity=1)
        with pytest.raises(ValueError):
            error_bound(np.ones(10), m=5, noise=-1.0, sparsity=1)
        with pytest.raises(ValueError):
            error_bound(np.ones(10), m=5, noise=0.0, sparsity=0)


class TestSignificance:
    def test_counts_above_relative_threshold(self):
        x = np.array([1.0, 1e-3, 1e-5])
        assert significant_coefficients(x, 1e-4) == 2

    def test_all_zero(self):
        assert significant_coefficients(np.zeros(5)) == 0

    def test_fraction(self):
        x = np.array([1.0, 1.0, 1e-9, 1e-9])
        assert sparsity_fraction(x, 1e-4) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparsity_fraction(np.array([]))


class TestMutualCoherence:
    def test_identity_is_zero(self):
        assert mutual_coherence(np.eye(5)) == 0.0

    def test_duplicate_column_is_one(self):
        a = np.eye(4)[:, :3]
        a = np.hstack([a, a[:, :1]])
        assert mutual_coherence(a) == pytest.approx(1.0)

    def test_needs_two_columns(self):
        with pytest.raises(ValueError):
            mutual_coherence(np.ones((3, 1)))


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    k=st.integers(min_value=1, max_value=30),
)
def test_property_best_k_term_is_best(seed, k):
    """No other K-sparse vector is closer in L2 than the top-K pick."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=30)
    top = best_k_term(x, k)
    # compare against a random alternative support of size k
    alt_support = rng.choice(30, size=k, replace=False)
    alt = np.zeros(30)
    alt[alt_support] = x[alt_support]
    assert np.linalg.norm(x - top) <= np.linalg.norm(x - alt) + 1e-12
