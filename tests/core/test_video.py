"""Tests for spatio-temporal (3-D DCT) compressed sensing."""

import numpy as np
import pytest

from repro.core.metrics import rmse
from repro.core.strategies import sample_and_reconstruct
from repro.core.video import Dct3Basis, dct3, idct3, reconstruct_burst


def _burst(frames=5, shape=(12, 12)):
    r, c = np.mgrid[0:shape[0], 0:shape[1]]
    return np.stack(
        [
            0.5 + 0.4 * np.sin(r / 4.0 + 0.08 * k) * np.cos(c / 5.0)
            for k in range(frames)
        ]
    )


class TestTransform:
    def test_round_trip(self):
        volume = np.random.default_rng(0).normal(size=(4, 6, 5))
        assert np.allclose(idct3(dct3(volume)), volume)

    def test_isometry(self):
        volume = np.random.default_rng(1).normal(size=(3, 8, 8))
        assert np.linalg.norm(dct3(volume)) == pytest.approx(
            np.linalg.norm(volume)
        )

    def test_static_burst_concentrates_in_temporal_dc(self):
        frame = np.random.default_rng(2).random((8, 8))
        burst = np.stack([frame] * 4)
        coefficients = dct3(burst)
        # all temporal-AC planes vanish for a static scene
        assert np.allclose(coefficients[1:], 0.0, atol=1e-12)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            dct3(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            idct3(np.zeros(16))


class TestBasisObject:
    def test_orthogonal_matrix(self):
        basis = Dct3Basis((2, 3, 3))
        psi = basis.to_matrix()
        assert np.allclose(psi.T @ psi, np.eye(18), atol=1e-12)

    def test_adjoint_identity(self):
        rng = np.random.default_rng(3)
        basis = Dct3Basis((3, 4, 4))
        x = rng.normal(size=48)
        y = rng.normal(size=48)
        assert np.dot(basis.synthesize(x), y) == pytest.approx(
            np.dot(x, basis.analyze(y))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Dct3Basis((0, 4, 4))


class TestBurstReconstruction:
    def test_joint_beats_per_frame_at_low_budget(self):
        burst = _burst()
        joint = reconstruct_burst(burst, 0.3, np.random.default_rng(4))
        per_frame = np.stack(
            [
                sample_and_reconstruct(frame, 0.3, np.random.default_rng(10 + k))
                for k, frame in enumerate(burst)
            ]
        )
        assert rmse(burst, joint) < rmse(burst, per_frame)

    def test_exclude_masks_respected(self):
        burst = _burst(frames=4)
        masks = np.zeros(burst.shape, dtype=bool)
        masks[:, 3, :] = True  # a dead row in every frame
        corrupted = burst.copy()
        corrupted[:, 3, :] = 0.0
        recon = reconstruct_burst(
            corrupted, 0.5, np.random.default_rng(5), exclude_masks=masks
        )
        # dead row recovered from the rest of the burst
        assert rmse(burst[:, 3, :], recon[:, 3, :]) < 0.05

    def test_noise_degrades_gracefully(self):
        burst = _burst(frames=3)
        clean = reconstruct_burst(burst, 0.5, np.random.default_rng(6))
        noisy = reconstruct_burst(
            burst, 0.5, np.random.default_rng(6), noise_sigma=0.05
        )
        assert rmse(burst, noisy) > rmse(burst, clean)
        assert rmse(burst, noisy) < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            reconstruct_burst(np.zeros((4, 4)), 0.5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            reconstruct_burst(_burst(), 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            reconstruct_burst(
                _burst(), 0.5, np.random.default_rng(0),
                exclude_masks=np.zeros((2, 2, 2), dtype=bool),
            )
