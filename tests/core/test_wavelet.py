"""Tests for the Haar wavelet basis (DWT alternative)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dct import Dct2Basis
from repro.core.metrics import rmse
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix
from repro.core.solvers import solve
from repro.core.wavelet import Haar2Basis, haar2, ihaar2


class TestTransform:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        image = rng.normal(size=(16, 16))
        assert np.allclose(ihaar2(haar2(image)), image)

    def test_orthonormal(self):
        rng = np.random.default_rng(1)
        image = rng.normal(size=(8, 8))
        assert np.linalg.norm(haar2(image)) == pytest.approx(
            np.linalg.norm(image)
        )

    def test_constant_image_single_coefficient(self):
        image = np.full((8, 8), 2.0)
        coefficients = haar2(image)
        assert coefficients[0, 0] == pytest.approx(16.0)
        assert np.count_nonzero(np.abs(coefficients) > 1e-10) == 1

    def test_rectangular_even_shapes(self):
        rng = np.random.default_rng(2)
        image = rng.normal(size=(12, 20))
        assert np.allclose(ihaar2(haar2(image)), image)

    def test_level_cap(self):
        rng = np.random.default_rng(3)
        image = rng.normal(size=(16, 16))
        one_level = haar2(image, max_levels=1)
        # the LL quadrant of a single level is a scaled 2x2 average
        assert one_level.shape == (16, 16)
        assert np.allclose(ihaar2(one_level, max_levels=1), image)

    def test_odd_shape_rejected(self):
        with pytest.raises(ValueError):
            haar2(np.zeros((7, 8)))
        with pytest.raises(ValueError):
            ihaar2(np.zeros((8, 7)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            haar2(np.zeros(8))


class TestBasisObject:
    def test_matrix_is_orthogonal(self):
        basis = Haar2Basis((4, 4))
        psi = basis.to_matrix()
        assert np.allclose(psi.T @ psi, np.eye(16), atol=1e-12)

    def test_adjoint_identity(self):
        rng = np.random.default_rng(4)
        basis = Haar2Basis((8, 8))
        x = rng.normal(size=64)
        y = rng.normal(size=64)
        assert np.dot(basis.synthesize(x), y) == pytest.approx(
            np.dot(x, basis.analyze(y))
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Haar2Basis((1, 8))
        with pytest.raises(ValueError):
            Haar2Basis((7, 7))


class TestCsWithHaar:
    def _blocky_frame(self):
        frame = np.zeros((16, 16))
        frame[2:8, 3:10] = 0.8
        frame[10:14, 6:15] = 0.4
        return frame

    def test_haar_wins_with_dense_measurements(self):
        """With an incoherent (Gaussian) sensing matrix, the sparser
        basis wins: a blocky frame is ~5x sparser in Haar than DCT."""
        from repro.core.sensing import gaussian_matrix

        frame = self._blocky_frame()
        rng = np.random.default_rng(5)
        phi = gaussian_matrix(140, 256, rng)
        b = phi @ frame.ravel()
        results = {}
        for name, basis in (
            ("haar", Haar2Basis((16, 16))),
            ("dct", Dct2Basis((16, 16))),
        ):
            operator = SensingOperator(phi, basis)
            result = solve("fista", operator, b)
            recon = operator.synthesize(result.coefficients).reshape(16, 16)
            results[name] = rmse(frame, recon)
        assert results["haar"] < results["dct"]

    def test_dct_wins_with_pixel_sampling(self):
        """With the paper's row-sampling encoder, DCT beats Haar even
        on a blocky frame: point sampling is *coherent* with localized
        wavelet atoms (unsampled fine atoms are invisible), which is
        exactly why the paper builds on the DCT."""
        frame = self._blocky_frame()
        rng = np.random.default_rng(5)
        phi = RowSamplingMatrix.random(256, 140, rng)
        b = phi.apply(frame.ravel())
        results = {}
        for name, basis in (
            ("haar", Haar2Basis((16, 16))),
            ("dct", Dct2Basis((16, 16))),
        ):
            operator = SensingOperator(phi, basis)
            result = solve("fista", operator, b)
            recon = operator.synthesize(result.coefficients).reshape(16, 16)
            results[name] = rmse(frame, recon)
        assert results["dct"] < results["haar"]

    def test_sensing_operator_accepts_haar(self):
        rng = np.random.default_rng(6)
        phi = RowSamplingMatrix.random(64, 30, rng)
        operator = SensingOperator(phi, Haar2Basis((8, 8)))
        x = rng.normal(size=64)
        v = rng.normal(size=30)
        assert np.dot(operator.matvec(x), v) == pytest.approx(
            np.dot(x, operator.rmatvec(v))
        )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rows=st.sampled_from([2, 4, 6, 8, 12, 16]),
    cols=st.sampled_from([2, 4, 6, 8, 12, 16]),
)
def test_property_haar_is_isometry(seed, rows, cols):
    """Energy is preserved for every even shape."""
    rng = np.random.default_rng(seed)
    image = rng.normal(size=(rows, cols))
    coefficients = haar2(image)
    assert np.linalg.norm(coefficients) == pytest.approx(
        np.linalg.norm(image), rel=1e-9
    )
    assert np.allclose(ihaar2(coefficients), image)
