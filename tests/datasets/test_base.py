"""Tests for the shared dataset-generation machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.base import (
    add_bandlimited_texture,
    ellipse_mask,
    gaussian_blob,
    quantize,
    smooth,
)
from repro.core.dct import dct2
from repro.core.theory import sparsity_fraction


class TestGaussianBlob:
    def test_peak_at_center(self):
        blob = gaussian_blob((21, 21), (10.0, 10.0), (3.0, 3.0))
        assert blob[10, 10] == pytest.approx(1.0)
        assert blob.argmax() == 10 * 21 + 10

    def test_anisotropy(self):
        blob = gaussian_blob((21, 21), (10.0, 10.0), (6.0, 1.5))
        # elongated along rows: farther row decay slower than col decay
        assert blob[16, 10] > blob[10, 16]

    def test_rotation_swaps_axes(self):
        blob = gaussian_blob((21, 21), (10.0, 10.0), (6.0, 1.5), np.pi / 2)
        assert blob[10, 16] > blob[16, 10]


class TestEllipseMask:
    def test_center_inside(self):
        mask = ellipse_mask((11, 11), (5.0, 5.0), (3.0, 2.0))
        assert mask[5, 5]
        assert not mask[0, 0]

    def test_area_scales(self):
        small = ellipse_mask((41, 41), (20.0, 20.0), (5.0, 5.0)).sum()
        large = ellipse_mask((41, 41), (20.0, 20.0), (10.0, 10.0)).sum()
        assert large > 3 * small


class TestSmooth:
    def test_preserves_mean(self):
        rng = np.random.default_rng(0)
        frame = rng.random((16, 16))
        out = smooth(frame, 1.5)
        assert out.mean() == pytest.approx(frame.mean(), rel=0.05)

    def test_reduces_variance(self):
        rng = np.random.default_rng(1)
        frame = rng.random((16, 16))
        assert smooth(frame, 2.0).std() < frame.std()

    def test_zero_sigma_identity(self):
        frame = np.random.default_rng(2).random((8, 8))
        assert np.array_equal(smooth(frame, 0.0), frame)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            smooth(np.zeros((4, 4)), -1.0)


class TestBandlimitedTexture:
    def _smooth_frame(self):
        return gaussian_blob((32, 32), (16.0, 16.0), (6.0, 6.0))

    def test_raises_significant_fraction(self):
        frame = self._smooth_frame()
        rng = np.random.default_rng(3)
        textured = add_bandlimited_texture(frame, rng, 0.5, 2e-3)
        before = sparsity_fraction(dct2(frame))
        after = sparsity_fraction(dct2(textured))
        assert after > before

    def test_support_fraction_controls_count(self):
        frame = self._smooth_frame()
        narrow = add_bandlimited_texture(
            frame, np.random.default_rng(4), 0.2, 2e-3
        )
        wide = add_bandlimited_texture(
            frame, np.random.default_rng(4), 0.8, 2e-3
        )
        assert sparsity_fraction(dct2(wide)) > sparsity_fraction(dct2(narrow))

    def test_small_amplitude_barely_changes_frame(self):
        frame = self._smooth_frame()
        textured = add_bandlimited_texture(
            frame, np.random.default_rng(5), 0.5, 1e-3
        )
        assert np.max(np.abs(textured - frame)) < 0.05

    def test_zero_amplitude_identity(self):
        frame = self._smooth_frame()
        out = add_bandlimited_texture(frame, np.random.default_rng(6), 0.5, 0.0)
        assert np.array_equal(out, frame)

    def test_validation(self):
        frame = self._smooth_frame()
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            add_bandlimited_texture(frame, rng, 1.5)
        with pytest.raises(ValueError):
            add_bandlimited_texture(frame, rng, 0.5, -1.0)


class TestQuantize:
    def test_levels(self):
        values = np.linspace(0, 1, 1000).reshape(50, 20)
        out = quantize(values, bits=3)
        assert len(np.unique(out)) == 8

    def test_clips_first(self):
        out = quantize(np.array([[-0.5, 1.5]]), bits=8)
        assert out[0, 0] == 0.0
        assert out[0, 1] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((2, 2)), bits=0)


@settings(max_examples=25, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_quantize_idempotent(bits, seed):
    """Quantising twice equals quantising once."""
    rng = np.random.default_rng(seed)
    frame = rng.random((8, 8))
    once = quantize(frame, bits)
    twice = quantize(once, bits)
    assert np.allclose(once, twice)
