"""Tests for the thermal / pressure / ultrasound frame generators."""

import numpy as np
import pytest

from repro.datasets import (
    PressureMapGenerator,
    ThermalHandGenerator,
    UltrasoundGenerator,
    sparsity_stats,
)


class TestThermalHand:
    def test_default_shape_and_range(self):
        generator = ThermalHandGenerator(seed=0)
        frame = generator.frame()
        assert frame.shape == (32, 32)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_frames_batch(self):
        frames = ThermalHandGenerator(seed=1).frames(5)
        assert frames.shape == (5, 32, 32)

    def test_frames_vary(self):
        frames = ThermalHandGenerator(seed=2).frames(2)
        assert not np.array_equal(frames[0], frames[1])

    def test_deterministic_given_seed(self):
        a = ThermalHandGenerator(seed=3).frame()
        b = ThermalHandGenerator(seed=3).frame()
        assert np.array_equal(a, b)

    def test_hand_is_warm_blob(self):
        frame = ThermalHandGenerator(seed=4).frame()
        # Hand interior clearly hotter than the frame corners.
        corner = np.mean([frame[0, 0], frame[0, -1], frame[-1, 0], frame[-1, -1]])
        assert frame.max() > corner + 0.3

    def test_celsius_mapping(self):
        generator = ThermalHandGenerator(seed=5)
        frame = generator.frame()
        celsius = generator.celsius(frame)
        assert celsius.min() >= generator.t_background_c - 1e-9
        assert celsius.max() <= generator.t_hand_c + 1e-9

    def test_sparsity_near_paper_half(self):
        frames = ThermalHandGenerator(seed=6).frames(20)
        stats = sparsity_stats(frames)
        assert 0.35 < stats.mean_fraction < 0.7

    def test_rejects_tiny_shape(self):
        with pytest.raises(ValueError):
            ThermalHandGenerator(shape=(4, 4))


class TestPressureMap:
    def test_paper_shape(self):
        assert PressureMapGenerator().shape == (41, 41)

    def test_range_and_variability(self):
        frames = PressureMapGenerator(seed=7).frames(3)
        assert frames.min() >= 0.0 and frames.max() <= 1.0
        assert not np.array_equal(frames[0], frames[1])

    def test_sparsity_near_paper_half(self):
        frames = PressureMapGenerator(seed=8).frames(20)
        stats = sparsity_stats(frames)
        assert 0.3 < stats.mean_fraction < 0.7


class TestUltrasound:
    def test_paper_shape(self):
        assert UltrasoundGenerator().shape == (100, 33)

    def test_attenuation_with_depth(self):
        frames = UltrasoundGenerator(seed=9, lesion_probability=0.0).frames(10)
        shallow = frames[:, :20, :].mean()
        deep = frames[:, -20:, :].mean()
        assert shallow > 1.5 * deep

    def test_lesion_probability_zero_and_one(self):
        always = UltrasoundGenerator(seed=10, lesion_probability=1.0).frame()
        never = UltrasoundGenerator(seed=10, lesion_probability=0.0).frame()
        assert always.shape == never.shape

    def test_sparsity_near_paper_half(self):
        frames = UltrasoundGenerator(seed=11).frames(10)
        stats = sparsity_stats(frames)
        assert 0.3 < stats.mean_fraction < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            UltrasoundGenerator(shape=(4, 4))
        with pytest.raises(ValueError):
            UltrasoundGenerator(lesion_probability=2.0)


class TestBatchApi:
    def test_count_validated(self):
        with pytest.raises(ValueError):
            ThermalHandGenerator().frames(0)
