"""Tests for dataset persistence."""

import numpy as np
import pytest

from repro.datasets import (
    TactileDataset,
    load_frames,
    load_tactile,
    make_tactile_dataset,
    save_frames,
    save_tactile,
)


class TestFrameIo:
    def test_round_trip(self, tmp_path):
        frames = np.random.default_rng(0).random((4, 8, 8))
        path = tmp_path / "frames.npz"
        save_frames(path, frames)
        assert np.array_equal(load_frames(path), frames)

    def test_rank_checked(self, tmp_path):
        with pytest.raises(ValueError):
            save_frames(tmp_path / "bad.npz", np.zeros((4, 4)))

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError):
            load_frames(path)


class TestTactileIo:
    def test_round_trip(self, tmp_path):
        dataset = make_tactile_dataset(2, seed=0, num_classes=3)
        path = tmp_path / "tactile.npz"
        save_tactile(path, dataset)
        loaded = load_tactile(path)
        assert isinstance(loaded, TactileDataset)
        assert np.array_equal(loaded.frames, dataset.frames)
        assert np.array_equal(loaded.labels, dataset.labels)

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "frames.npz"
        save_frames(path, np.zeros((2, 4, 4)))
        with pytest.raises(ValueError):
            load_tactile(path)
