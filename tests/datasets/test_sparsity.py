"""Tests for the Fig. 2 sparsity statistics."""

import numpy as np
import pytest

from repro.datasets.sparsity import sorted_dct_magnitudes, sparsity_stats


class TestSortedMagnitudes:
    def test_descending(self):
        frame = np.random.default_rng(0).random((16, 16))
        curve = sorted_dct_magnitudes(frame)
        assert np.all(np.diff(curve) <= 0)

    def test_normalized_starts_at_one(self):
        frame = np.random.default_rng(1).random((8, 8))
        assert sorted_dct_magnitudes(frame)[0] == pytest.approx(1.0)

    def test_unnormalized(self):
        frame = np.full((8, 8), 2.0)
        curve = sorted_dct_magnitudes(frame, normalize=False)
        assert curve[0] == pytest.approx(16.0)  # DC = mean * sqrt(N)

    def test_smooth_decays_faster_than_noise(self):
        r, c = np.mgrid[0:16, 0:16]
        smooth = np.exp(-((r - 8.0) ** 2 + (c - 8.0) ** 2) / 20.0)
        noise = np.random.default_rng(2).random((16, 16))
        tail_smooth = sorted_dct_magnitudes(smooth)[100]
        tail_noise = sorted_dct_magnitudes(noise)[100]
        assert tail_smooth < tail_noise


class TestSparsityStats:
    def test_counts_and_fractions_consistent(self):
        frames = np.random.default_rng(3).random((5, 8, 8))
        stats = sparsity_stats(frames)
        assert stats.num_frames == 5
        assert stats.frame_size == 64
        assert np.allclose(stats.fractions, stats.significant_counts / 64)

    def test_noise_is_fully_significant(self):
        # White noise: nearly all coefficients exceed 1e-4 of max.
        frames = np.random.default_rng(4).random((3, 16, 16))
        stats = sparsity_stats(frames)
        assert stats.mean_fraction > 0.95

    def test_threshold_monotonicity(self):
        frames = np.random.default_rng(5).random((3, 8, 8))
        loose = sparsity_stats(frames, relative_threshold=1e-6)
        tight = sparsity_stats(frames, relative_threshold=1e-1)
        assert loose.mean_count >= tight.mean_count

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            sparsity_stats(np.zeros((8, 8)))


class TestTransformOption:
    def test_haar_transform_supported(self):
        frames = np.random.default_rng(6).random((3, 16, 16))
        stats = sparsity_stats(frames, transform="haar")
        assert stats.num_frames == 3
        assert np.all(stats.fractions > 0)

    def test_thermal_frames_sparser_in_dct_than_haar(self):
        """The generators' noise floor is band-limited in the DCT
        domain; in the Haar domain it smears over most coefficients, so
        the Fig. 2b fraction is transform-dependent -- the paper's
        choice of transform is part of the experimental definition."""
        from repro.datasets import ThermalHandGenerator

        frames = ThermalHandGenerator(seed=7).frames(5)
        dct_stats = sparsity_stats(frames, transform="dct")
        haar_stats = sparsity_stats(frames, transform="haar")
        assert dct_stats.mean_fraction < haar_stats.mean_fraction
        assert dct_stats.mean_fraction < 0.7

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError):
            sparsity_stats(np.zeros((2, 8, 8)), transform="dft")
