"""Tests for the 26-class tactile dataset generator."""

import numpy as np
import pytest

from repro.datasets.tactile import (
    NUM_CLASSES,
    TactileObjectGenerator,
    make_tactile_dataset,
)


class TestGenerator:
    def test_frame_shape_and_range(self):
        frame = TactileObjectGenerator(0).frame()
        assert frame.shape == (32, 32)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_class_index_validated(self):
        with pytest.raises(ValueError):
            TactileObjectGenerator(26)
        with pytest.raises(ValueError):
            TactileObjectGenerator(-1)

    def test_signature_stable_across_sample_seeds(self):
        a = TactileObjectGenerator(5, seed=0)
        b = TactileObjectGenerator(5, seed=99)
        assert a._signature == b._signature

    def test_different_classes_have_different_signatures(self):
        a = TactileObjectGenerator(1)._signature
        b = TactileObjectGenerator(2)._signature
        assert a != b

    def test_intra_class_variation(self):
        generator = TactileObjectGenerator(3, seed=0)
        frames = generator.frames(2)
        assert not np.array_equal(frames[0], frames[1])

    def test_classes_statistically_separable(self):
        """Mean frames of two classes differ far more than samples
        within one class differ from their own mean."""
        frames_a = TactileObjectGenerator(0, seed=0).frames(10)
        frames_b = TactileObjectGenerator(1, seed=0).frames(10)
        mean_a, mean_b = frames_a.mean(axis=0), frames_b.mean(axis=0)
        between = np.linalg.norm(mean_a - mean_b)
        within = np.mean([np.linalg.norm(f - mean_a) for f in frames_a])
        assert between > 0.5 * within


class TestDataset:
    def test_balanced_and_shuffled(self):
        dataset = make_tactile_dataset(4, seed=0)
        assert len(dataset) == 4 * NUM_CLASSES
        counts = np.bincount(dataset.labels, minlength=NUM_CLASSES)
        assert np.all(counts == 4)
        # shuffled: labels are not grouped in blocks
        assert not np.array_equal(dataset.labels, np.sort(dataset.labels))

    def test_subset_of_classes(self):
        dataset = make_tactile_dataset(3, num_classes=5, seed=1)
        assert set(np.unique(dataset.labels)) == set(range(5))

    def test_different_split_seeds_differ(self):
        train = make_tactile_dataset(2, seed=0)
        test = make_tactile_dataset(2, seed=100)
        assert not np.array_equal(train.frames, test.frames)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_tactile_dataset(0)
        with pytest.raises(ValueError):
            make_tactile_dataset(2, num_classes=0)

    def test_length_mismatch_rejected(self):
        from repro.datasets.tactile import TactileDataset

        with pytest.raises(ValueError):
            TactileDataset(frames=np.zeros((2, 4, 4)), labels=np.zeros(3))
