"""Tests for the CNT-TFT compact model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.cnt_tft import NTYPE, PTYPE, CntTft, TftParameters


class TestParameters:
    def test_defaults_valid(self):
        TftParameters()

    def test_validation(self):
        with pytest.raises(ValueError):
            TftParameters(mobility_cm2=-1.0)
        with pytest.raises(ValueError):
            TftParameters(cox_f_per_m2=0.0)
        with pytest.raises(ValueError):
            TftParameters(subthreshold_swing=0.0)
        with pytest.raises(ValueError):
            TftParameters(contact_resistance=-1.0)
        with pytest.raises(ValueError):
            TftParameters(leakage_a_per_um=-1.0)

    def test_with_variation(self):
        base = TftParameters()
        varied = base.with_variation(1.2, 0.1)
        assert varied.mobility_cm2 == pytest.approx(base.mobility_cm2 * 1.2)
        assert varied.vth == pytest.approx(base.vth + 0.1)


class TestPtypeBehaviour:
    def setup_method(self):
        self.device = CntTft(width_um=100, length_um=10)

    def test_on_off_ratio_realistic(self):
        i_on = self.device.drain_current(-3.0, -1.0)
        i_off = self.device.drain_current(1.0, -1.0)
        assert 1e3 < i_on / i_off < 1e8

    def test_current_increases_with_gate_drive(self):
        vgs = np.array([-1.0, -1.5, -2.0, -2.5, -3.0])
        currents = self.device.drain_current(vgs, -1.0)
        assert np.all(np.diff(currents) > 0)

    def test_current_increases_with_vds_magnitude(self):
        vds = np.array([-0.1, -0.5, -1.0, -2.0])
        currents = self.device.drain_current(-3.0, vds)
        assert np.all(np.diff(currents) > 0)

    def test_saturation_flattens(self):
        linear_slope = self.device.drain_current(-3.0, -0.2) - self.device.drain_current(-3.0, -0.1)
        sat_slope = self.device.drain_current(-3.0, -2.9) - self.device.drain_current(-3.0, -2.8)
        assert sat_slope < linear_slope

    def test_zero_vds_zero_current(self):
        assert self.device.drain_current(-3.0, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_scalar_in_scalar_out(self):
        assert isinstance(self.device.drain_current(-3.0, -1.0), float)


class TestGeometryScaling:
    def test_current_scales_with_width(self):
        narrow = CntTft(width_um=50, length_um=10)
        wide = CntTft(width_um=200, length_um=10)
        ratio = wide.drain_current(-3.0, -1.0) / narrow.drain_current(-3.0, -1.0)
        assert 3.0 < ratio < 4.5  # slightly sub-linear from contact R

    def test_current_scales_inverse_with_length(self):
        short = CntTft(width_um=50, length_um=10)
        long = CntTft(width_um=50, length_um=25)
        assert short.drain_current(-3.0, -1.0) > long.drain_current(-3.0, -1.0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CntTft(width_um=0, length_um=10)
        with pytest.raises(ValueError):
            CntTft(width_um=10, length_um=-1)

    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError):
            CntTft(polarity="x")


class TestNtypeSymmetry:
    def test_ntype_mirrors_ptype(self):
        params = TftParameters(vth=0.8)
        n_device = CntTft(100, 10, params, polarity=NTYPE)
        p_device = CntTft(100, 10, TftParameters(vth=-0.8), polarity=PTYPE)
        i_n = n_device.drain_current(3.0, 1.0)
        i_p = p_device.drain_current(-3.0, -1.0)
        assert i_n == pytest.approx(i_p, rel=1e-9)


class TestSmallSignal:
    def test_transconductance_sign_matches_polarity(self):
        # dId/dVgs: raising the gate turns a p-type device off, so the
        # (source-to-drain) current derivative is negative; n-type is
        # positive.
        p_device = CntTft(100, 10)
        assert p_device.transconductance(-2.0, -2.0) < 0
        n_device = CntTft(100, 10, TftParameters(vth=0.8), polarity=NTYPE)
        assert n_device.transconductance(2.0, 2.0) > 0

    def test_output_conductance_positive(self):
        device = CntTft(100, 10)
        assert device.output_conductance(-3.0, -1.0) > 0

    def test_on_resistance_decreases_with_drive(self):
        device = CntTft(100, 10)
        assert device.on_resistance(-3.0) < device.on_resistance(-1.5)

    def test_on_resistance_validation(self):
        device = CntTft(100, 10)
        with pytest.raises(ValueError):
            device.on_resistance(-3.0, vds_probe=0.0)

    def test_off_resistance_huge(self):
        device = CntTft(100, 10)
        assert device.on_resistance(1.0) > 1e8


class TestContactResistance:
    def test_contact_resistance_reduces_current(self):
        ideal = CntTft(100, 10, TftParameters(contact_resistance=0.0))
        real = CntTft(100, 10, TftParameters(contact_resistance=2e4))
        assert real.drain_current(-3.0, -1.0) < ideal.drain_current(-3.0, -1.0)


@settings(max_examples=30, deadline=None)
@given(
    vgs=st.floats(min_value=-3.0, max_value=1.0),
    vds=st.floats(min_value=-3.0, max_value=0.0),
)
def test_property_current_nonnegative_and_finite(vgs, vds):
    """The p-type source-drain current is always >= 0 and finite."""
    device = CntTft(100, 10)
    current = device.drain_current(vgs, vds)
    assert np.isfinite(current)
    assert current >= 0.0


class TestTemperatureDependence:
    def test_reference_temperature_is_identity(self):
        base = TftParameters()
        at_ref = base.at_temperature(base.reference_temp_c)
        assert at_ref.mobility_cm2 == pytest.approx(base.mobility_cm2)
        assert at_ref.vth == pytest.approx(base.vth)

    def test_mobility_falls_with_temperature(self):
        base = TftParameters()
        hot = base.at_temperature(85.0)
        cold = base.at_temperature(-20.0)
        assert hot.mobility_cm2 < base.mobility_cm2 < cold.mobility_cm2

    def test_ptype_threshold_weakens_when_hot(self):
        base = TftParameters(vth=-0.8)
        hot = base.at_temperature(85.0)
        assert hot.vth > base.vth  # toward zero

    def test_on_current_temperature_coefficient_small(self):
        """The access device's drift over the sensing range stays small
        relative to the Pt sensor's signal (so the pixel remains
        sensor-dominated)."""
        cold = CntTft(500, 25, TftParameters().at_temperature(20.0))
        hot = CntTft(500, 25, TftParameters().at_temperature(100.0))
        i_cold = cold.drain_current(-3.0, -1.0)
        i_hot = hot.drain_current(-3.0, -1.0)
        assert abs(i_hot - i_cold) / i_cold < 0.35

    def test_absolute_zero_rejected(self):
        with pytest.raises(ValueError):
            TftParameters().at_temperature(-300.0)
