"""Tests for defect taxonomy and defect maps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.defects import DefectMap, DefectType, PixelDefect


class TestDefectType:
    def test_stuck_values(self):
        assert DefectType.OPEN_CHANNEL.stuck_value == 0.0
        assert DefectType.METALLIC_SHORT.stuck_value == 1.0
        assert DefectType.GATE_LEAK.stuck_value == 1.0


class TestPixelDefect:
    def test_rejects_negative_position(self):
        with pytest.raises(ValueError):
            PixelDefect(-1, 0, DefectType.OPEN_CHANNEL)


class TestDefectMap:
    def test_sample_rate(self):
        rng = np.random.default_rng(0)
        defect_map = DefectMap.sample((20, 20), 0.1, rng)
        assert len(defect_map.defects) == 40
        assert defect_map.defect_rate == pytest.approx(0.1)
        assert defect_map.array_yield == pytest.approx(0.9)

    def test_mask_matches_defects(self):
        rng = np.random.default_rng(1)
        defect_map = DefectMap.sample((10, 10), 0.05, rng)
        mask = defect_map.mask()
        assert mask.sum() == len(defect_map.defects)
        for defect in defect_map.defects:
            assert mask[defect.row, defect.col]

    def test_apply_sets_stuck_values(self):
        rng = np.random.default_rng(2)
        defect_map = DefectMap.sample((8, 8), 0.2, rng)
        frame = np.full((8, 8), 0.5)
        out = defect_map.apply(frame)
        mask = defect_map.mask()
        assert np.all((out[mask] == 0.0) | (out[mask] == 1.0))
        assert np.all(out[~mask] == 0.5)

    def test_apply_checks_shape(self):
        defect_map = DefectMap(shape=(4, 4))
        with pytest.raises(ValueError):
            defect_map.apply(np.zeros((5, 5)))

    def test_stuck_values_nan_for_healthy(self):
        defect_map = DefectMap(
            shape=(3, 3), defects=[PixelDefect(1, 1, DefectType.OPEN_CHANNEL)]
        )
        stuck = defect_map.stuck_values()
        assert stuck[1, 1] == 0.0
        assert np.isnan(stuck[0, 0])

    def test_counts_by_type_total(self):
        rng = np.random.default_rng(3)
        defect_map = DefectMap.sample((30, 30), 0.1, rng)
        counts = defect_map.counts_by_type()
        assert sum(counts.values()) == len(defect_map.defects)

    def test_custom_type_weights(self):
        rng = np.random.default_rng(4)
        defect_map = DefectMap.sample(
            (20, 20), 0.2, rng,
            type_weights={DefectType.OPEN_CHANNEL: 1.0},
        )
        counts = defect_map.counts_by_type()
        assert counts[DefectType.OPEN_CHANNEL] == len(defect_map.defects)

    def test_out_of_array_defect_rejected(self):
        with pytest.raises(ValueError):
            DefectMap(
                shape=(3, 3), defects=[PixelDefect(5, 0, DefectType.GATE_LEAK)]
            )

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            DefectMap.sample((4, 4), 1.5, np.random.default_rng(0))

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            DefectMap.sample(
                (4, 4), 0.1, np.random.default_rng(0),
                type_weights={DefectType.GATE_LEAK: 0.0},
            )


@settings(max_examples=25, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_yield_complements_rate(rate, seed):
    """yield + defect rate == 1 for any sampled map."""
    rng = np.random.default_rng(seed)
    defect_map = DefectMap.sample((12, 12), rate, rng)
    assert defect_map.array_yield + defect_map.defect_rate == pytest.approx(1.0)
    assert defect_map.mask().sum() == int(round(rate * 144))
