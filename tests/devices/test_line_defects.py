"""Tests for structured (line) defect maps."""

import numpy as np
import pytest

from repro.devices.defects import DefectType, LineDefectMap


class TestSampleLines:
    def test_dead_lines_reported(self):
        rng = np.random.default_rng(0)
        defect_map = LineDefectMap.sample_lines((10, 12), 2, 1, rng)
        assert len(defect_map.dead_rows) == 2
        assert len(defect_map.dead_cols) == 1

    def test_defect_count_accounts_for_crossings(self):
        rng = np.random.default_rng(1)
        defect_map = LineDefectMap.sample_lines((10, 10), 2, 2, rng)
        # 2 rows + 2 cols - 4 crossings counted once
        assert len(defect_map.defects) == 2 * 10 + 2 * 10 - 4

    def test_apply_kills_whole_lines(self):
        rng = np.random.default_rng(2)
        defect_map = LineDefectMap.sample_lines(
            (8, 8), 1, 0, rng, kind=DefectType.OPEN_CHANNEL
        )
        frame = np.full((8, 8), 0.5)
        out = defect_map.apply(frame)
        dead_row = defect_map.dead_rows[0]
        assert np.all(out[dead_row] == 0.0)

    def test_zero_lines_is_clean(self):
        rng = np.random.default_rng(3)
        defect_map = LineDefectMap.sample_lines((8, 8), 0, 0, rng)
        assert defect_map.defect_rate == 0.0

    def test_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            LineDefectMap.sample_lines((8, 8), 9, 0, rng)
        with pytest.raises(ValueError):
            LineDefectMap.sample_lines((8, 8), 0, -1, rng)

    def test_short_kind_sticks_high(self):
        rng = np.random.default_rng(5)
        defect_map = LineDefectMap.sample_lines(
            (6, 6), 1, 0, rng, kind=DefectType.METALLIC_SHORT
        )
        out = defect_map.apply(np.full((6, 6), 0.5))
        assert np.all(out[defect_map.dead_rows[0]] == 1.0)
