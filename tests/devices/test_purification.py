"""Tests for the s-CNT purification / yield model (Sec. 3.2)."""

import pytest

from repro.devices.purification import (
    PurificationChain,
    PurificationStep,
    default_chain,
    tft_yield,
)


class TestPurificationStep:
    def test_validation(self):
        with pytest.raises(ValueError):
            PurificationStep("bad", metallic_removal=1.0)
        with pytest.raises(ValueError):
            PurificationStep("bad", metallic_removal=0.5, semiconducting_loss=1.0)


class TestDefaultChain:
    def test_paper_purity_after_sorting(self):
        # Paper: polymer sorting reaches s-CNT purity > 99.99 %.
        chain = default_chain()
        assert chain.purity_after(1) >= 0.9999 - 1e-6

    def test_paper_final_purity(self):
        # Paper: second centrifugation reaches > 99.997 %.
        chain = default_chain()
        assert chain.final_purity() >= 0.99997 - 1e-6

    def test_purity_monotone_in_steps(self):
        chain = default_chain()
        assert (
            chain.initial_purity
            < chain.purity_after(1)
            < chain.purity_after(2) + 1e-12
        )

    def test_material_efficiency_below_one(self):
        chain = default_chain()
        assert 0.0 < chain.material_efficiency() < 1.0


class TestTftYield:
    def test_paper_yield_number(self):
        # Paper: >99.9 % TFT yield at the final purity (validated on
        # >5000 devices).  Our independent-tube model reproduces it for
        # a typical ~30 bridging tubes.
        purity = default_chain().final_purity()
        assert tft_yield(purity, 30) >= 0.999 - 2e-4

    def test_yield_decreases_with_tube_count(self):
        assert tft_yield(0.999, 10) > tft_yield(0.999, 100)

    def test_perfect_purity_perfect_yield(self):
        assert tft_yield(1.0, 1000) == 1.0

    def test_zero_tubes_always_works(self):
        assert tft_yield(0.5, 0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            tft_yield(1.5, 10)
        with pytest.raises(ValueError):
            tft_yield(0.9, -1)


class TestCustomChain:
    def test_initial_purity_validation(self):
        with pytest.raises(ValueError):
            PurificationChain(initial_purity=0.0, steps=())

    def test_no_steps_keeps_initial(self):
        chain = PurificationChain(initial_purity=0.8, steps=())
        assert chain.final_purity() == pytest.approx(0.8)
