"""Tests for the bias-stress drift model."""

import numpy as np
import pytest

from repro.devices.cnt_tft import TftParameters
from repro.devices.stability import BiasStressModel


class TestStress:
    def test_shift_grows_and_saturates(self):
        model = BiasStressModel(tau_s=100.0, shift_per_volt=0.1)
        first = model.stress(2.0, 50.0)
        second = model.stress(2.0, 500.0)
        third = model.stress(2.0, 50_000.0)
        assert 0 < first < second < third
        assert third <= 0.2 + 1e-12  # saturation = 0.1 * 2 V

    def test_episodes_compose_like_continuous_stress(self):
        continuous = BiasStressModel(tau_s=100.0)
        split = BiasStressModel(tau_s=100.0)
        continuous.stress(2.0, 300.0)
        for _ in range(3):
            split.stress(2.0, 100.0)
        assert split.accumulated_shift_v == pytest.approx(
            continuous.accumulated_shift_v, rel=1e-6
        )

    def test_zero_overdrive_no_shift(self):
        model = BiasStressModel()
        assert model.stress(0.0, 1e6) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            BiasStressModel().stress(1.0, -1.0)


class TestRecovery:
    def test_recovery_reduces_shift(self):
        model = BiasStressModel(tau_s=100.0, tau_recovery_s=1000.0)
        model.stress(2.0, 500.0)
        stressed = model.accumulated_shift_v
        model.recover(2000.0)
        assert model.accumulated_shift_v < stressed

    def test_full_recovery_asymptotically(self):
        model = BiasStressModel(tau_recovery_s=10.0)
        model.stress(2.0, 100.0)
        model.recover(1e6)
        assert model.accumulated_shift_v < 1e-6

    def test_reset(self):
        model = BiasStressModel()
        model.stress(2.0, 1000.0)
        model.reset()
        assert model.accumulated_shift_v == 0.0


class TestDutyCycling:
    def test_duty_cycle_shifts_less_than_dc_stress(self):
        duty_model = BiasStressModel(tau_s=100.0, tau_recovery_s=200.0)
        dc_model = BiasStressModel(tau_s=100.0, tau_recovery_s=200.0)
        duty_model.duty_cycled(2.0, period_s=10.0, duty=0.1, cycles=50)
        dc_model.stress(2.0, 500.0)
        assert duty_model.accumulated_shift_v < dc_model.accumulated_shift_v

    def test_validation(self):
        with pytest.raises(ValueError):
            BiasStressModel().duty_cycled(2.0, 10.0, duty=1.5, cycles=1)
        with pytest.raises(ValueError):
            BiasStressModel().duty_cycled(2.0, 0.0, duty=0.5, cycles=1)


class TestApply:
    def test_ptype_shifts_more_negative(self):
        model = BiasStressModel()
        model.stress(2.0, 1e5)
        base = TftParameters(vth=-0.8)
        shifted = model.apply(base)
        assert shifted.vth < base.vth

    def test_ntype_shifts_more_positive(self):
        model = BiasStressModel()
        model.stress(2.0, 1e5)
        base = TftParameters(vth=0.8)
        assert model.apply(base).vth > base.vth

    def test_model_parameter_validation(self):
        with pytest.raises(ValueError):
            BiasStressModel(tau_s=0.0)
        with pytest.raises(ValueError):
            BiasStressModel(beta=0.0)
        with pytest.raises(ValueError):
            BiasStressModel(shift_per_volt=-1.0)
