"""Tests for the Pt sensor and active-matrix pixel (Fig. 5b)."""

import numpy as np
import pytest

from repro.devices.temperature_sensor import PtTemperatureSensor, TemperaturePixel


class TestPtSensor:
    def test_resistance_at_reference(self):
        sensor = PtTemperatureSensor(r0_ohm=1000.0, t0_celsius=25.0)
        assert sensor.resistance(25.0) == pytest.approx(1000.0)

    def test_resistance_linear_in_temperature(self):
        sensor = PtTemperatureSensor()
        temps = np.linspace(0, 120, 20)
        resistances = sensor.resistance(temps)
        fitted = np.polyfit(temps, resistances, 1)
        predicted = np.polyval(fitted, temps)
        assert np.allclose(resistances, predicted)

    def test_inversion_round_trip(self):
        sensor = PtTemperatureSensor()
        temps = np.array([10.0, 40.0, 85.0])
        assert np.allclose(sensor.temperature(sensor.resistance(temps)), temps)

    def test_standard_pt_coefficient(self):
        sensor = PtTemperatureSensor()
        assert sensor.alpha_per_k == pytest.approx(3.9e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            PtTemperatureSensor(r0_ohm=0.0)
        with pytest.raises(ValueError):
            PtTemperatureSensor(alpha_per_k=-1.0)


class TestTemperaturePixel:
    def setup_method(self):
        self.pixel = TemperaturePixel()

    def test_current_decreases_with_temperature(self):
        temps = np.linspace(20, 100, 9)
        currents = self.pixel.read_current(temps)
        assert np.all(np.diff(currents) < 0)

    def test_linearity_better_than_two_percent(self):
        assert self.pixel.linearity_error() < 0.02

    def test_inversion_accurate(self):
        temps = np.linspace(20, 100, 17)
        currents = self.pixel.read_current(temps)
        recovered = self.pixel.temperature_from_current(currents)
        assert np.allclose(recovered, temps, atol=1e-9)

    def test_off_current_much_smaller_than_on(self):
        on = self.pixel.read_current(50.0)
        off = self.pixel.off_current(50.0)
        assert off < on / 1e2

    def test_inversion_rejects_nonpositive_current(self):
        with pytest.raises(ValueError):
            self.pixel.temperature_from_current(np.array([0.0]))

    def test_paper_bias_access_device(self):
        # The paper's pixel uses a W/L = 500/25 um access TFT.
        assert self.pixel.access_tft.width_um == 500.0
        assert self.pixel.access_tft.length_um == 25.0

    def test_read_voltage_validation(self):
        with pytest.raises(ValueError):
            TemperaturePixel(read_voltage=0.0)

    def test_weaker_word_line_reduces_current(self):
        strong = self.pixel.read_current(50.0, word_line_v=-3.0)
        weak = self.pixel.read_current(50.0, word_line_v=-1.5)
        assert weak < strong
