"""Tests for the device variation model."""

import numpy as np
import pytest

from repro.devices.cnt_tft import TftParameters
from repro.devices.variation import VariationModel


class TestSample:
    def test_reproducible_with_seed(self):
        nominal = TftParameters()
        a = VariationModel(seed=42).sample(nominal)
        b = VariationModel(seed=42).sample(nominal)
        assert a.mobility_cm2 == b.mobility_cm2
        assert a.vth == b.vth

    def test_zero_sigma_returns_nominal(self):
        nominal = TftParameters()
        varied = VariationModel(mobility_sigma=0.0, vth_sigma=0.0).sample(nominal)
        assert varied.mobility_cm2 == pytest.approx(nominal.mobility_cm2)
        assert varied.vth == pytest.approx(nominal.vth)

    def test_statistics_match_configuration(self):
        nominal = TftParameters()
        model = VariationModel(mobility_sigma=0.2, vth_sigma=0.1, seed=0)
        samples = [model.sample(nominal) for _ in range(3000)]
        log_scales = np.log([s.mobility_cm2 / nominal.mobility_cm2 for s in samples])
        shifts = np.array([s.vth - nominal.vth for s in samples])
        assert np.std(log_scales) == pytest.approx(0.2, rel=0.1)
        assert np.std(shifts) == pytest.approx(0.1, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            VariationModel(mobility_sigma=-0.1)
        with pytest.raises(ValueError):
            VariationModel(gradient_strength=-1.0)


class TestSampleArray:
    def test_shape_and_independence(self):
        nominal = TftParameters()
        grid = VariationModel(seed=1).sample_array(nominal, (4, 6))
        assert len(grid) == 4 and len(grid[0]) == 6
        values = {grid[r][c].vth for r in range(4) for c in range(6)}
        assert len(values) > 20  # essentially all distinct

    def test_gradient_produces_spatial_trend(self):
        nominal = TftParameters()
        model = VariationModel(
            mobility_sigma=0.0, vth_sigma=0.0, gradient_strength=0.4, seed=2
        )
        grid = model.sample_array(nominal, (10, 4))
        top = np.mean([grid[0][c].mobility_cm2 for c in range(4)])
        bottom = np.mean([grid[9][c].mobility_cm2 for c in range(4)])
        assert bottom > top  # mobility rises along the slow axis

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            VariationModel().sample_array(TftParameters(), (0, 4))
