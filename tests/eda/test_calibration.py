"""Tests for the timing-library calibration flow."""

import pytest

from repro.circuits.pseudo_cmos import CELL_LIBRARY
from repro.eda.characterize import calibrate_cell_library, characterize_nand2


class TestCalibrateCellLibrary:
    @pytest.fixture(scope="class")
    def library(self):
        return calibrate_cell_library()

    def test_covers_every_shipped_cell(self, library):
        assert set(library) == set(CELL_LIBRARY)

    def test_delays_positive_and_flexible_scale(self, library):
        for name, delay in library.items():
            assert 1e-8 < delay < 1e-4, name

    def test_buffer_is_two_inverters(self, library):
        assert library["BUF"] == pytest.approx(2.0 * library["INV"])

    def test_composed_cells_slower_than_primitives(self, library):
        assert library["XOR2"] > library["NAND2"]
        assert library["AND2"] > library["NAND2"]

    def test_nand_comparable_to_inverter(self, library):
        # Same output stage, parallel pull-ups: within 2x of the inverter.
        assert library["NAND2"] < 2.0 * library["INV"]


class TestCharacterizeNand2:
    def test_delay_increases_with_load(self):
        fast = characterize_nand2(load_farads=1e-11)
        slow = characterize_nand2(load_farads=1e-10)
        assert slow > fast

    def test_load_validation(self):
        with pytest.raises(ValueError):
            characterize_nand2(load_farads=0.0)
