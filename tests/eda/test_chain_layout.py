"""Tests for the inverter-chain row assembly PCell."""

import pytest

from repro.circuits.netlist import GROUND, Circuit
from repro.circuits.pseudo_cmos import build_inverter
from repro.eda.cells import inverter_chain_layout
from repro.eda.drc import run_drc
from repro.eda.extract import extract
from repro.eda.lvs import compare
from repro.eda.techfile import default_cnt_rules


def _chain_schematic(stages: int) -> Circuit:
    schematic = Circuit("chain")
    schematic.add_voltage_source("vin", "IN", GROUND, 0.0)
    previous = "IN"
    for stage in range(stages):
        output = "OUT" if stage == stages - 1 else f"w{stage + 1}"
        build_inverter(schematic, f"u{stage}", previous, output)
        previous = output
    return schematic


class TestChainLayout:
    def test_drc_clean_at_several_lengths(self):
        rules = default_cnt_rules()
        for stages in (1, 2, 5):
            report = run_drc(inverter_chain_layout(stages, rules), rules)
            assert report.clean, f"{stages} stages: {report.summary()}"

    def test_device_count_scales(self):
        assert extract(inverter_chain_layout(4)).device_count() == 16

    def test_lvs_against_chain_schematic(self):
        chain = inverter_chain_layout(3)
        result = compare(extract(chain), _chain_schematic(3))
        assert result.match, result.summary()

    def test_lvs_detects_wrong_length(self):
        chain = inverter_chain_layout(3)
        result = compare(extract(chain), _chain_schematic(4))
        assert not result.match

    def test_internal_nets_distinct_per_stage(self):
        netlist = extract(inverter_chain_layout(3))
        internals = [net for net in netlist.nets if net.endswith("_a")]
        assert len(internals) == 3

    def test_needs_positive_stage_count(self):
        with pytest.raises(ValueError):
            inverter_chain_layout(0)
