"""Tests for compact-model extraction and cell characterisation."""

import numpy as np
import pytest

from repro.devices.cnt_tft import CntTft, TftParameters
from repro.eda.characterize import characterize_inverter, extract_parameters


class TestParameterExtraction:
    def _measure(self, parameters, width=100.0, length=10.0, vds=-1.0):
        device = CntTft(width, length, parameters)
        vgs = np.linspace(-3.0, 0.2, 40)
        return vgs, np.maximum(device.drain_current(vgs, vds), 1e-15)

    def test_round_trip_recovers_parameters(self):
        true = TftParameters(mobility_cm2=32.0, vth=-0.65, subthreshold_swing=0.15)
        vgs, current = self._measure(true)
        fit = extract_parameters(vgs, -1.0, current, 100.0, 10.0)
        assert fit.parameters.mobility_cm2 == pytest.approx(32.0, rel=0.02)
        assert fit.parameters.vth == pytest.approx(-0.65, abs=0.02)
        assert fit.parameters.subthreshold_swing == pytest.approx(0.15, rel=0.05)
        assert fit.relative_rms_error < 0.01

    def test_fit_tolerates_measurement_noise(self):
        rng = np.random.default_rng(0)
        true = TftParameters(mobility_cm2=20.0, vth=-0.9)
        vgs, current = self._measure(true)
        noisy = current * np.exp(rng.normal(0.0, 0.03, size=current.shape))
        fit = extract_parameters(vgs, -1.0, noisy, 100.0, 10.0)
        assert fit.parameters.mobility_cm2 == pytest.approx(20.0, rel=0.15)
        assert fit.parameters.vth == pytest.approx(-0.9, abs=0.1)

    def test_summary_renders(self):
        true = TftParameters()
        vgs, current = self._measure(true)
        fit = extract_parameters(vgs, -1.0, current, 100.0, 10.0)
        assert "mobility" in fit.summary()

    def test_validation(self):
        with pytest.raises(ValueError):
            extract_parameters(np.zeros(3), -1.0, np.zeros(4), 10, 10)
        with pytest.raises(ValueError):
            extract_parameters(
                np.zeros(3), -1.0, np.array([1.0, -1.0, 1.0]), 10, 10
            )


class TestInverterCharacterisation:
    @pytest.fixture(scope="class")
    def delay_points(self):
        return characterize_inverter(loads_farads=(1e-11, 1e-10))

    def test_delay_increases_with_load(self, delay_points):
        assert delay_points[1].delay_s > delay_points[0].delay_s

    def test_delays_in_microsecond_regime(self, delay_points):
        # Flexible CNT logic: ring-oscillator-scale stage delays.
        for point in delay_points:
            assert 1e-8 < point.delay_s < 1e-4

    def test_load_validation(self):
        with pytest.raises(ValueError):
            characterize_inverter(loads_farads=(0.0,))
