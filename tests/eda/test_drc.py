"""Tests for the DRC engine: one constructed violation per rule."""

import pytest

from repro.eda.cells import inverter_layout, tft_layout
from repro.eda.drc import run_drc
from repro.eda.layout import Layout, MaskLayer
from repro.eda.techfile import default_cnt_rules


@pytest.fixture
def rules():
    return default_cnt_rules()


class TestCleanCells:
    def test_tft_pcell_clean(self, rules):
        report = run_drc(tft_layout(50, 10, rules), rules)
        assert report.clean, report.summary()

    def test_inverter_pcell_clean(self, rules):
        report = run_drc(inverter_layout(rules), rules)
        assert report.clean, report.summary()

    def test_various_sizes_clean(self, rules):
        for width, length in [(20, 10), (150, 10), (500, 25)]:
            report = run_drc(tft_layout(width, length, rules), rules)
            assert report.clean, f"{width}/{length}: {report.summary()}"


class TestWidthRule:
    def test_narrow_metal_flagged(self, rules):
        layout = Layout("bad")
        layout.add_rect(MaskLayer.GATE_METAL, 0, 0, 2, 20)  # 2 < 5 um
        report = run_drc(layout, rules)
        assert not report.clean
        assert report.by_rule().get("min_width") == 1


class TestSpacingRule:
    def test_close_neighbours_flagged(self, rules):
        layout = Layout("bad")
        layout.add_rect(MaskLayer.SD_METAL, 0, 0, 10, 10)
        layout.add_rect(MaskLayer.SD_METAL, 12, 0, 22, 10)  # 2 < 5 um gap
        report = run_drc(layout, rules)
        assert report.by_rule().get("min_spacing") == 1

    def test_touching_is_connected_not_violation(self, rules):
        layout = Layout("ok")
        layout.add_rect(MaskLayer.SD_METAL, 0, 0, 10, 10)
        layout.add_rect(MaskLayer.SD_METAL, 10, 0, 20, 10)
        report = run_drc(layout, rules)
        assert "min_spacing" not in report.by_rule()

    def test_different_layers_do_not_interact(self, rules):
        layout = Layout("ok")
        layout.add_rect(MaskLayer.SD_METAL, 0, 0, 10, 10)
        layout.add_rect(MaskLayer.GATE_METAL, 11, 0, 21, 10)
        report = run_drc(layout, rules)
        assert "min_spacing" not in report.by_rule()


class TestViaEnclosure:
    def test_enclosed_via_clean(self, rules):
        layout = Layout("ok")
        layout.add_rect(MaskLayer.GATE_METAL, 0, 0, 10, 10)
        layout.add_rect(MaskLayer.SD_METAL, 0, 0, 10, 10)
        layout.add_rect(MaskLayer.VIA, 3, 3, 7, 7)
        report = run_drc(layout, rules)
        assert "via_enclosure" not in report.by_rule()

    def test_bare_via_flagged(self, rules):
        layout = Layout("bad")
        layout.add_rect(MaskLayer.VIA, 0, 0, 4, 4)
        report = run_drc(layout, rules)
        assert report.by_rule().get("via_enclosure") == 1

    def test_single_metal_insufficient(self, rules):
        layout = Layout("bad")
        layout.add_rect(MaskLayer.GATE_METAL, 0, 0, 10, 10)
        layout.add_rect(MaskLayer.VIA, 3, 3, 7, 7)
        report = run_drc(layout, rules)
        assert report.by_rule().get("via_enclosure") == 1


class TestChannelOverlap:
    def test_gate_covering_cnt_flagged(self, rules):
        layout = Layout("bad")
        layout.add_rect(MaskLayer.CNT, 10, 10, 20, 20)
        layout.add_rect(MaskLayer.GATE_METAL, 0, 0, 30, 30)  # covers CNT fully
        report = run_drc(layout, rules)
        assert report.by_rule().get("channel_overlap") == 1

    def test_proper_overhang_clean(self, rules):
        layout = Layout("ok")
        layout.add_rect(MaskLayer.CNT, 0, 10, 30, 20)
        layout.add_rect(MaskLayer.GATE_METAL, 10, 5, 20, 25)
        report = run_drc(layout, rules)
        assert "channel_overlap" not in report.by_rule()


class TestGrid:
    def test_off_grid_coordinate_flagged(self, rules):
        layout = Layout("bad")
        layout.add_rect(MaskLayer.SD_METAL, 0.3, 0, 10.3, 10)
        report = run_drc(layout, rules)
        assert report.by_rule().get("off_grid") == 1


class TestReport:
    def test_summary_counts(self, rules):
        layout = Layout("multi")
        layout.add_rect(MaskLayer.SD_METAL, 0, 0, 2, 2)  # too narrow
        layout.add_rect(MaskLayer.VIA, 20, 20, 24, 24)  # bare via
        report = run_drc(layout, rules)
        assert len(report.violations) == 2
        assert "min_width=1" in report.summary()
        assert "via_enclosure=1" in report.summary()

    def test_clean_summary(self, rules):
        layout = Layout("empty")
        report = run_drc(layout, rules)
        assert report.clean
        assert "DRC clean" in report.summary()
