"""Tests for netlist extraction and LVS."""

import numpy as np
import pytest

from repro.circuits.netlist import GROUND, Circuit
from repro.circuits.pseudo_cmos import build_inverter, build_nand2
from repro.devices.cnt_tft import CntTft
from repro.eda.cells import inverter_layout, tft_layout
from repro.eda.extract import ExtractionError, extract
from repro.eda.layout import Layout, MaskLayer
from repro.eda.lvs import compare


class TestExtraction:
    def test_single_tft_recognised(self):
        netlist = extract(tft_layout(50, 10))
        assert netlist.device_count() == 1
        device = netlist.devices[0]
        assert device.gate_net == "G"
        assert set(device.sd_nets) == {"S", "D"}
        assert device.width_um == pytest.approx(50.0)
        assert device.length_um == pytest.approx(10.0)

    def test_inverter_extracts_four_devices(self):
        netlist = extract(inverter_layout())
        assert netlist.device_count() == 4
        nets = set(netlist.nets)
        assert {"IN", "OUT", "VDD", "VSS", "A", "GND"} <= nets

    def test_geometry_measured_from_layout(self):
        netlist = extract(tft_layout(120, 20))
        device = netlist.devices[0]
        assert device.width_um == pytest.approx(120.0)
        assert device.length_um == pytest.approx(20.0)

    def test_label_conflict_detected(self):
        layout = Layout("bad")
        # One connected metal shape carrying two different labels.
        layout.add_rect(MaskLayer.SD_METAL, 0, 0, 10, 10, net="A")
        layout.add_rect(MaskLayer.SD_METAL, 5, 0, 15, 10, net="B")
        with pytest.raises(ExtractionError):
            extract(layout)

    def test_via_connects_layers(self):
        layout = Layout("via")
        layout.add_rect(MaskLayer.GATE_METAL, 0, 0, 10, 10, net="X")
        layout.add_rect(MaskLayer.SD_METAL, 0, 0, 10, 10)
        layout.add_rect(MaskLayer.VIA, 3, 3, 7, 7)
        netlist = extract(layout)
        # all three shapes merge into one net named by the label
        assert netlist.nets == ["X"]

    def test_floating_cnt_ignored(self):
        layout = Layout("float")
        layout.add_rect(MaskLayer.CNT, 0, 0, 10, 10)
        netlist = extract(layout)
        assert netlist.device_count() == 0

    def test_channel_without_sd_raises(self):
        layout = Layout("bad")
        layout.add_rect(MaskLayer.GATE_METAL, 10, 0, 20, 30, net="G")
        layout.add_rect(MaskLayer.CNT, 5, 5, 25, 25)
        with pytest.raises(ExtractionError):
            extract(layout)


class TestLvs:
    def _inverter_schematic(self):
        schematic = Circuit("inv")
        schematic.add_voltage_source("vin", "IN", GROUND, 0.0)
        build_inverter(schematic, "u0", "IN", "OUT")
        return schematic

    def test_inverter_matches(self):
        result = compare(extract(inverter_layout()), self._inverter_schematic())
        assert result.match, result.summary()
        assert "LVS clean" in result.summary()

    def test_wrong_sizing_fails(self):
        result = compare(
            extract(inverter_layout(drive_width_um=120)),
            self._inverter_schematic(),
        )
        assert not result.match

    def test_device_count_mismatch_fails(self):
        result = compare(extract(tft_layout()), self._inverter_schematic())
        assert not result.match
        assert any("device count" in m for m in result.mismatches)

    def test_wrong_topology_fails(self):
        # NAND2 schematic has 6 devices, so compare a 6-device layout of
        # the wrong connectivity: two stacked 3-device groups.
        schematic = Circuit("nand")
        schematic.add_voltage_source("va", "A", GROUND, 0.0)
        schematic.add_voltage_source("vb", "B", GROUND, 0.0)
        build_nand2(schematic, "u0", "A", "B", "OUT")
        layout = Layout("six")
        for i in range(6):
            tft_layout(
                width_um=150.0,
                length_um=10.0,
                gate_net="A",
                source_net="VDD",
                drain_net=f"n{i}",
                origin=(0.0, i * 300.0),
                layout=layout,
            )
        result = compare(extract(layout), schematic)
        assert not result.match

    def test_source_drain_symmetry(self):
        """LVS must accept swapped source/drain labels on a TFT."""
        swapped = tft_layout(50, 10, source_net="D", drain_net="S")
        schematic = Circuit("single")
        schematic.add_voltage_source("vg", "G", GROUND, 0.0)
        schematic.add_voltage_source("vs", "S", GROUND, 0.0)
        schematic.add_voltage_source("vd", "D", GROUND, 0.0)
        schematic.add_tft("m0", gate="G", drain="D", source="S",
                          device=CntTft(50, 10))
        result = compare(extract(swapped), schematic)
        assert result.match, result.summary()
