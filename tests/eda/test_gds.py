"""Tests for layout stream serialisation."""

import pytest

from repro.eda.cells import inverter_layout
from repro.eda.extract import extract
from repro.eda.gds import LayoutFormatError, dump_layout, load_layout
from repro.eda.layout import Layout, MaskLayer


class TestRoundTrip:
    def test_shapes_preserved(self):
        original = inverter_layout()
        loaded = load_layout(dump_layout(original))
        assert loaded.name == original.name
        assert len(loaded.shapes) == len(original.shapes)
        for a, b in zip(loaded.shapes, original.shapes):
            assert a.layer == b.layer
            assert a.net == b.net
            assert a.rect == b.rect

    def test_extraction_identical_after_round_trip(self):
        original = inverter_layout()
        loaded = load_layout(dump_layout(original))
        assert extract(loaded).device_count() == extract(original).device_count()

    def test_net_labels_optional(self):
        layout = Layout("mixed")
        layout.add_rect(MaskLayer.CNT, 0, 0, 5, 5)
        layout.add_rect(MaskLayer.SD_METAL, 0, 0, 5, 5, net="X")
        loaded = load_layout(dump_layout(layout))
        assert loaded.shapes[0].net is None
        assert loaded.shapes[1].net == "X"

    def test_comments_ignored(self):
        text = "LAYOUT t\n# comment\nRECT cnt 0 0 5 5\nEND\n"
        assert len(load_layout(text).shapes) == 1


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(LayoutFormatError):
            load_layout("RECT cnt 0 0 5 5\n")

    def test_unknown_layer(self):
        with pytest.raises(LayoutFormatError):
            load_layout("LAYOUT t\nRECT mystery 0 0 5 5\n")

    def test_degenerate_rect(self):
        with pytest.raises(LayoutFormatError):
            load_layout("LAYOUT t\nRECT cnt 0 0 0 5\n")

    def test_malformed_card(self):
        with pytest.raises(LayoutFormatError):
            load_layout("LAYOUT t\nRECT cnt 0 0 5\n")

    def test_unknown_card(self):
        with pytest.raises(LayoutFormatError):
            load_layout("LAYOUT t\nPOLY cnt 0 0 5 5\n")
