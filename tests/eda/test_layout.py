"""Tests for the layout geometry primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eda.layout import Layout, MaskLayer, Rect


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 5)
        with pytest.raises(ValueError):
            Rect(0, 5, 5, 5)

    def test_dimensions(self):
        rect = Rect(1, 2, 4, 8)
        assert rect.width == 3
        assert rect.height == 6
        assert rect.min_dimension == 3
        assert rect.area == 18

    def test_intersects(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersects(Rect(5, 5, 15, 15))
        assert not a.intersects(Rect(10, 0, 20, 10))  # touching, no area
        assert a.touches_or_intersects(Rect(10, 0, 20, 10))

    def test_intersection_region(self):
        a = Rect(0, 0, 10, 10)
        overlap = a.intersection(Rect(5, 5, 15, 15))
        assert overlap == Rect(5, 5, 10, 10)
        assert a.intersection(Rect(20, 20, 30, 30)) is None

    def test_contains_with_margin(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(2, 2, 8, 8), margin=2.0)
        assert not outer.contains(Rect(1, 2, 8, 8), margin=2.0)

    def test_distance(self):
        a = Rect(0, 0, 2, 2)
        assert a.distance(Rect(5, 0, 7, 2)) == pytest.approx(3.0)
        assert a.distance(Rect(5, 6, 7, 8)) == pytest.approx(5.0)  # 3-4-5
        assert a.distance(Rect(1, 1, 3, 3)) == 0.0

    def test_expanded(self):
        rect = Rect(2, 2, 4, 4).expanded(1.0)
        assert rect == Rect(1, 1, 5, 5)


class TestLayout:
    def test_add_and_filter_by_layer(self):
        layout = Layout("cell")
        layout.add_rect(MaskLayer.GATE_METAL, 0, 0, 5, 5)
        layout.add_rect(MaskLayer.CNT, 0, 0, 3, 3)
        assert len(layout.on_layer(MaskLayer.GATE_METAL)) == 1
        assert len(layout.on_layer(MaskLayer.VIA)) == 0

    def test_bounding_box(self):
        layout = Layout()
        layout.add_rect(MaskLayer.CNT, -1, 0, 5, 5)
        layout.add_rect(MaskLayer.CNT, 2, -3, 4, 10)
        assert layout.bounding_box() == Rect(-1, -3, 5, 10)

    def test_empty_bounding_box_rejected(self):
        with pytest.raises(ValueError):
            Layout().bounding_box()

    def test_merge_offsets(self):
        child = Layout()
        child.add_rect(MaskLayer.CNT, 0, 0, 2, 2, net="a")
        parent = Layout()
        parent.merge(child, dx=10.0, dy=5.0)
        shape = parent.shapes[0]
        assert shape.rect == Rect(10, 5, 12, 7)
        assert shape.net == "a"


@settings(max_examples=30, deadline=None)
@given(
    x0=st.floats(min_value=-50, max_value=50),
    y0=st.floats(min_value=-50, max_value=50),
    w=st.floats(min_value=0.1, max_value=20),
    h=st.floats(min_value=0.1, max_value=20),
    margin=st.floats(min_value=0.0, max_value=5),
)
def test_property_expanded_contains_original(x0, y0, w, h, margin):
    """A rectangle expanded by m contains the original with margin m."""
    rect = Rect(x0, y0, x0 + w, y0 + h)
    grown = rect.expanded(margin)
    assert grown.contains(rect, margin=margin - 1e-9)
    assert grown.area >= rect.area
