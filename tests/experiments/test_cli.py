"""Tests for the `python -m repro.experiments` CLI."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_fig2_runs(self, capsys):
        assert main(["FIG2", "--samples", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2b" in out
        assert "temperature" in out

    def test_comm_runs(self, capsys):
        assert main(["COMM"]) == 0
        out = capsys.readouterr().out
        assert "cost= 0.50" in out
        assert "ENC:" in out

    def test_fig6a_runs(self, capsys):
        assert main(["FIG6a", "--frames", "1"]) == 0
        out = capsys.readouterr().out
        assert "RMSE w/ CS" in out

    def test_tolerance_accepts_workers(self, capsys):
        assert main(["TOL", "--frames", "1", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "tolerance limit" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["FIG99"])
