"""Integration tests: every experiment module reproduces the paper's
qualitative result at reduced scale."""

import numpy as np
import pytest

from repro.experiments import (
    run_comm_cost,
    run_encoder_check,
    run_eq1_phase_transition,
    run_eq2_bound,
    run_fig2,
    run_fig5b,
    run_fig5cd,
    run_fig5e,
    run_fig6a,
    run_fig6c,
)
from repro.experiments.fig6b_accuracy import TactileExperiment


class TestFig2:
    @pytest.fixture(scope="class")
    def results(self):
        return run_fig2(num_samples=15, seed=0)

    def test_covers_three_modalities(self, results):
        assert [r.modality for r in results] == [
            "temperature", "pressure", "ultrasound",
        ]
        assert [r.array_shape for r in results] == [
            (32, 32), (41, 41), (100, 33),
        ]

    def test_fig2a_rapid_decay(self, results):
        for result in results:
            curve = result.sorted_magnitudes
            # magnitudes drop by >= 3 decades within the first half
            assert curve[len(curve) // 2] < 1e-3 * curve[0]

    def test_fig2b_half_sparsity(self, results):
        # Paper: ~50 % significant coefficients for all body signals.
        for result in results:
            assert 0.3 < result.stats.mean_fraction < 0.7


class TestFig5:
    def test_fig5b_sensor_linearity(self):
        curve = run_fig5b()
        assert curve.linearity_error < 0.02
        assert curve.inversion_rmse_c < 0.01
        assert np.all(np.diff(curve.currents_a) < 0)

    def test_fig5cd_shift_register(self):
        result = run_fig5cd()
        assert result.functional
        assert result.tft_count == 304

    def test_fig5e_amplifier(self):
        measurement = run_fig5e()
        # Paper: 50 mV -> 1.3 V (28 dB); model lands in the same regime.
        assert 20.0 < measurement.gain_db < 34.0
        assert measurement.output_amplitude_v > 0.5


class TestFig6a:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig6a(
            num_frames=3,
            sampling_fractions=(0.5,),
            error_rates=(0.0, 0.10, 0.20),
            seed=0,
        )

    def test_headline_rmse_reduction(self, points):
        at_ten = next(p for p in points if p.error_rate == 0.10)
        # Paper: 0.20 -> 0.05 at 10 % errors; require >= 3x reduction.
        assert at_ten.rmse_without_cs > 3.0 * at_ten.rmse_with_cs
        assert at_ten.rmse_with_cs < 0.08
        assert at_ten.rmse_without_cs > 0.12

    def test_cs_rmse_flat_in_error_rate(self, points):
        # With oracle exclusion, RMSE barely rises up to 20 % errors.
        by_rate = {p.error_rate: p for p in points}
        assert by_rate[0.20].rmse_with_cs < 2.0 * max(
            by_rate[0.0].rmse_with_cs, 0.02
        )

    def test_raw_rmse_grows_with_error_rate(self, points):
        by_rate = {p.error_rate: p for p in points}
        assert (
            by_rate[0.20].rmse_without_cs
            > by_rate[0.10].rmse_without_cs
            > by_rate[0.0].rmse_without_cs
        )


class TestFig6aSamplingTrend:
    def test_rmse_decreases_with_sampling(self):
        points = run_fig6a(
            num_frames=3,
            sampling_fractions=(0.45, 0.60),
            error_rates=(0.10,),
            seed=1,
        )
        by_fraction = {p.sampling_fraction: p for p in points}
        assert (
            by_fraction[0.60].rmse_with_cs <= by_fraction[0.45].rmse_with_cs + 0.005
        )


class TestFig6b:
    @pytest.fixture(scope="class")
    def experiment(self):
        # Reduced-scale training run (the full 26-class configuration
        # lives in the FIG6b bench); accuracy thresholds are scaled to
        # this data budget.
        exp = TactileExperiment(
            samples_per_class=16, epochs=15, num_classes=6, seed=1
        )
        exp.fit()
        return exp

    def test_clean_accuracy_beats_chance_strongly(self, experiment):
        assert experiment.clean_accuracy() > 0.5  # chance is 1/6

    def test_cs_boosts_corrupted_accuracy(self, experiment):
        point = experiment.evaluate_point(0.5, 0.10)
        assert point.accuracy_with_cs > point.accuracy_without_cs + 0.1

    def test_uncorrupted_grid_point_harmless(self, experiment):
        point = experiment.evaluate_point(0.5, 0.0)
        # CS on clean data should stay close to the clean accuracy.
        assert point.accuracy_with_cs > experiment.clean_accuracy() - 0.15

    def test_requires_fit_before_evaluate(self):
        exp = TactileExperiment(samples_per_class=2, epochs=1, num_classes=3)
        with pytest.raises(RuntimeError):
            exp.evaluate_point(0.5, 0.1)


class TestFig6c:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig6c(
            error_rates=(0.03, 0.15), num_frames=4, rounds=5, seed=0
        )

    def test_all_strategies_beat_no_cs(self, points):
        for point in points:
            if point.error_rate == 0.0:
                continue
            assert point.rmse_rpca < point.rmse_no_cs
            assert point.rmse_resample_median < point.rmse_no_cs

    def test_rpca_wins_at_high_error_rate(self, points):
        # Paper: RPCA outperforms resampling above ~8 % errors.
        high = next(p for p in points if p.error_rate == 0.15)
        assert high.rmse_rpca < high.rmse_resample_median


class TestCommAndEncoder:
    def test_comm_cost_table(self):
        results = run_comm_cost(array_shapes=((16, 16), (32, 32)))
        for result in results:
            assert result.cost_ratio == pytest.approx(0.5, abs=0.01)
            assert result.scan_cycles == result.array_shape[1]
            # Eq. (1) at K = N/2 predicts M <= N (sanity of the claim
            # "K log(N/K) ~ N/2": within the same order).
            assert result.eq1_estimate <= result.n

    def test_encoder_check_exact(self):
        check = run_encoder_check()
        assert check["max_deviation"] < 1e-3
        assert check["scan_cycles"] == check["expected_cycles"]
        assert check["measurements"] == check["m"]


class TestTheory:
    def test_eq1_phase_transition_monotone(self):
        points = run_eq1_phase_transition(
            shape=(12, 12),
            sparsities=(10,),
            m_grid=(0.2, 0.5, 0.8),
            trials=3,
            seed=0,
        )
        rates = [p.success_rate for p in points]
        assert rates[-1] >= rates[0]
        assert rates[-1] == 1.0  # plenty of measurements -> recovery

    def test_eq1_estimate_in_transition_region(self):
        points = run_eq1_phase_transition(
            shape=(12, 12), sparsities=(10,),
            m_grid=(0.2, 0.35, 0.5, 0.65, 0.8), trials=3, seed=1,
        )
        estimate = points[0].eq1_estimate
        # success at the Eq. (1) estimate's fraction should be decent
        succeeded = [p for p in points if p.m >= estimate]
        assert succeeded and np.mean([p.success_rate for p in succeeded]) > 0.6

    def test_eq2_terms_scale_with_noise(self):
        points = run_eq2_bound(noise_levels=(0.0, 0.02, 0.1), seed=0)
        measurement_terms = [p.bound_measurement for p in points]
        assert measurement_terms == sorted(measurement_terms)
        # observed error also grows with noise
        observed = [p.observed_rmse_l2 for p in points]
        assert observed[-1] > observed[0]

    def test_eq2_bound_within_theorem_constant(self):
        points = run_eq2_bound(noise_levels=(0.02, 0.05), seed=1)
        for point in points:
            assert point.observed_rmse_l2 < 6.0 * point.bound_total


class TestPerClassReport:
    def test_report_covers_tested_classes(self):
        exp = TactileExperiment(
            samples_per_class=6, epochs=2, num_classes=4, seed=0
        )
        exp.fit()
        report = exp.per_class_report()
        assert set(report) == set(range(4))
        for accuracy in report.values():
            assert 0.0 <= accuracy <= 1.0

    def test_augment_copies_enlarges_training_set(self):
        plain = TactileExperiment(
            samples_per_class=4, epochs=1, num_classes=3, seed=0
        )
        augmented = TactileExperiment(
            samples_per_class=4, epochs=1, num_classes=3, seed=0,
            augment_copies=2,
        )
        assert len(augmented.train.frames) == 3 * len(plain.train.frames)
