"""Tests for the RES experiment (decode availability under faults)."""

import pytest

from repro.experiments.resilience_sweep import (
    format_table,
    run_resilience_sweep,
)


class TestResilienceSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return run_resilience_sweep(
            num_frames=1, fault_rates=(0.0, 0.3), seed=0
        )

    def test_delivery_is_total(self, points):
        for point in points:
            assert point.delivered == point.frames

    def test_fault_free_point_is_clean(self, points):
        baseline = points[0]
        assert baseline.fault_rate == 0.0
        assert baseline.ok == baseline.frames
        assert baseline.faults_injected == 0

    def test_workers_match_sequential(self, points):
        distributed = run_resilience_sweep(
            num_frames=1, fault_rates=(0.0, 0.3), seed=0, workers=2
        )
        for ref, got in zip(points, distributed):
            assert got.fault_rate == ref.fault_rate
            assert got.ok == ref.ok
            assert got.degraded == ref.degraded
            assert got.fallback == ref.fallback
            assert got.total_attempts == ref.total_attempts
            assert got.faults_injected == ref.faults_injected
            if ref.median_rmse == ref.median_rmse:  # not NaN
                assert got.median_rmse == ref.median_rmse

    def test_table_renders(self, points):
        table = format_table(points)
        assert "fault rate" in table
        assert len(table.splitlines()) == 2 + len(points)
