"""Tests for the sparse-error tolerance experiment (TOL)."""

import pytest

from repro.experiments.tolerance import (
    TolerancePoint,
    format_table,
    run_tolerance,
    tolerance_limit,
)


class TestRunTolerance:
    @pytest.fixture(scope="class")
    def points(self):
        return run_tolerance(
            error_rates=(0.0, 0.20, 0.40), num_frames=2, seed=0
        )

    def test_paper_claim_over_twenty_percent(self, points):
        # Sec. 1: the system tolerates > 20 % sparse errors.
        by_rate = {p.error_rate: p for p in points}
        assert by_rate[0.20].rmse_with_cs < 0.08
        assert by_rate[0.40].rmse_with_cs < 0.08

    def test_raw_error_grows(self, points):
        rates = [p.rmse_without_cs for p in points]
        assert rates == sorted(rates)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            run_tolerance(error_rates=(0.6,), sampling_fraction=0.5)

    def test_workers_match_sequential(self, points):
        distributed = run_tolerance(
            error_rates=(0.0, 0.20, 0.40), num_frames=2, seed=0, workers=2
        )
        for ref, got in zip(points, distributed):
            assert got.error_rate == ref.error_rate
            assert got.rmse_with_cs == ref.rmse_with_cs
            assert got.rmse_without_cs == ref.rmse_without_cs


class TestToleranceLimit:
    def test_limit_picks_largest_passing(self):
        points = [
            TolerancePoint(0.1, 0.02, 0.1),
            TolerancePoint(0.3, 0.05, 0.3),
            TolerancePoint(0.5, 0.30, 0.5),
        ]
        assert tolerance_limit(points, rmse_threshold=0.08) == 0.3

    def test_limit_zero_when_nothing_passes(self):
        points = [TolerancePoint(0.1, 0.5, 0.1)]
        assert tolerance_limit(points) == 0.0

    def test_table_renders(self):
        points = [TolerancePoint(0.1, 0.02, 0.1)]
        table = format_table(points)
        assert "err rate" in table
        assert "0.10" in table
