"""Shared fixtures: every test gets clean, disabled instrumentation."""

import pytest

from repro import instrument


@pytest.fixture(autouse=True)
def clean_instrumentation():
    """Reset collectors and force-disable around every test."""
    was_enabled = instrument.enabled()
    instrument.disable()
    instrument.reset()
    yield
    if was_enabled:
        instrument.enable()
    else:
        instrument.disable()
    instrument.reset()
