"""The ``python -m repro.instrument`` profiling CLI, in-process."""

import json

import pytest

from repro.instrument.__main__ import PROFILES, main
from repro.instrument.report import SCHEMA


def test_list_mode(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == sorted(PROFILES)
    assert "fig2_sparsity" in out


def test_requires_a_mode():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_experiment_rejected_by_argparse():
    with pytest.raises(SystemExit):
        main(["--experiment", "not_a_thing"])


def test_profile_writes_valid_report(tmp_path, capsys):
    out_path = tmp_path / "fig2.profile.json"
    code = main(
        [
            "--experiment",
            "fig2_sparsity",
            "--samples",
            "3",
            "--seed",
            "1",
            "--output",
            str(out_path),
        ]
    )
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["schema"] == SCHEMA
    assert report["meta"]["experiment"] == "fig2_sparsity"
    assert report["meta"]["seed"] == 1
    assert report["meta"]["wall_s"] > 0
    (root,) = report["spans"]
    assert root["name"] == "profile.fig2_sparsity"
    child_names = {c["name"] for c in root["children"]}
    assert "experiment.fig2_sparsity" in child_names
    # the human tables went to stdout
    out = capsys.readouterr().out
    assert "profile.fig2_sparsity" in out
    assert str(out_path) in out


def test_profile_stdout_mode_emits_json(capsys):
    code = main(["--experiment", "fig2_sparsity", "--samples", "2", "--quiet"])
    assert code == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)
    assert report["schema"] == SCHEMA
    assert captured.err == ""  # --quiet suppressed the tables


def test_validate_mode(tmp_path, capsys):
    out_path = tmp_path / "r.json"
    assert (
        main(
            [
                "--experiment",
                "fig2_sparsity",
                "--samples",
                "2",
                "--output",
                str(out_path),
                "--quiet",
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["--validate", str(out_path)]) == 0
    assert "valid" in capsys.readouterr().out


def test_validate_rejects_bad_schema(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other", "spans": []}))
    assert main(["--validate", str(bad)]) == 1
    assert "schema" in capsys.readouterr().err


def test_validate_rejects_non_json(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("not json {")
    assert main(["--validate", str(bad)]) == 1
    assert "not JSON" in capsys.readouterr().err
