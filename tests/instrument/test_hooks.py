"""Hot-path hooks: a real decode produces the documented spans/metrics."""

import numpy as np

from repro import instrument
from repro.core import OracleExclusionStrategy, evaluate_frame
from repro.core.dct import Dct2Basis
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix
from repro.core.solvers import solve
from repro.instrument import iter_span_dicts


def test_solver_span_per_solve_with_trajectory():
    basis = Dct2Basis((8, 8))
    phi = RowSamplingMatrix.random(m=48, n=64, rng=np.random.default_rng(0))
    operator = SensingOperator(phi, basis)
    b = phi.apply(np.random.default_rng(1).normal(size=64))
    with instrument.profiled() as session:
        result = solve("fista", operator, b, max_iterations=40)
    report = session.report()
    spans = [s for s in iter_span_dicts(report) if s["name"] == "solver.fista"]
    assert len(spans) == 1
    attrs = spans[0]["attributes"]
    assert attrs["solver"] == "fista"
    assert attrs["iterations"] == result.iterations
    assert attrs["converged"] == result.converged
    assert attrs["residual"] == result.residual
    assert len(spans[0]["trajectory"]) == result.iterations
    counters = report["metrics"]["counters"]
    assert counters["decoder.requests"] == 1
    assert counters["solver.fista.calls"] == 1
    hist = report["metrics"]["histograms"]["solver.fista.iterations"]
    assert hist["count"] == 1 and hist["max"] == result.iterations


def test_pipeline_decode_tree_and_counters():
    frame = np.random.default_rng(2).random((8, 8))
    strategy = OracleExclusionStrategy(sampling_fraction=0.5)
    with instrument.profiled() as session:
        evaluate_frame(
            frame,
            error_rate=0.1,
            strategy=strategy,
            rng=np.random.default_rng(3),
        )
    report = session.report()
    names = [s["name"] for s in iter_span_dicts(report)]
    assert "pipeline.evaluate_frame" in names
    assert "decode.sample_and_reconstruct" in names
    assert any(n.startswith("solver.") for n in names)
    counters = report["metrics"]["counters"]
    assert counters["pipeline.frames"] == 1
    assert counters["decode.calls"] >= 1
    assert counters["decode.measurements"] >= 1
    # nesting: the solver span sits under the decode span
    (root,) = report["spans"]
    assert root["name"] == "pipeline.evaluate_frame"
    decode = next(
        s
        for s in iter_span_dicts(report)
        if s["name"] == "decode.sample_and_reconstruct"
    )
    assert any(c["name"].startswith("solver.") for c in decode["children"])


def test_hooks_cost_nothing_when_disabled():
    frame = np.random.default_rng(4).random((8, 8))
    strategy = OracleExclusionStrategy(sampling_fraction=0.5)
    assert not instrument.enabled()
    evaluate_frame(
        frame,
        error_rate=0.1,
        strategy=strategy,
        rng=np.random.default_rng(5),
    )
    assert instrument.get_tracer().roots == []
    assert instrument.get_registry().snapshot()["counters"] == {}
