"""Tests for the json_safe coercion helper."""

import json

import numpy as np

from repro.instrument import json_safe


class TestJsonSafe:
    def test_numpy_scalars_become_python_scalars(self):
        assert json_safe(np.float64(0.25)) == 0.25
        assert isinstance(json_safe(np.float64(0.25)), float)
        assert json_safe(np.int64(7)) == 7
        assert isinstance(json_safe(np.int64(7)), int)
        assert json_safe(np.bool_(True)) is True

    def test_arrays_become_nested_lists(self):
        assert json_safe(np.arange(4).reshape(2, 2)) == [[0, 1], [2, 3]]

    def test_containers_rebuilt_recursively(self):
        value = {
            "a": np.int32(1),
            "b": [np.float32(2.0), (np.int8(3), {np.uint16(4)})],
        }
        coerced = json_safe(value)
        assert coerced == {"a": 1, "b": [2.0, [3, [4]]]}
        json.dumps(coerced)

    def test_plain_values_pass_through(self):
        for value in (None, "x", 1, 2.5, True, {"k": [1, 2]}):
            assert json_safe(value) == value

    def test_deeply_numpy_typed_payload_dumps(self):
        payload = {
            "iterations": np.int64(120),
            "residuals": np.array([0.1, 0.2]),
            "flags": (np.bool_(False), np.bool_(True)),
        }
        parsed = json.loads(json.dumps(json_safe(payload)))
        assert parsed["iterations"] == 120
        assert parsed["residuals"] == [0.1, 0.2]
        assert parsed["flags"] == [False, True]
