"""Counter/gauge/histogram correctness, including under threads."""

import threading

import pytest

from repro import instrument
from repro.instrument.metrics import (
    RAW_SAMPLE_CAP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter()
        c.add()
        c.add(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().add(-1)

    def test_thread_safe_under_contention(self):
        c = Counter()

        def hammer():
            for _ in range(10_000):
                c.add(1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(1.0)
        g.set(-3.5)
        assert g.value == -3.5


class TestHistogram:
    def test_exact_stats(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["total"] == 10.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0
        assert s["max"] == 4.0

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(101):
            h.observe(float(v))
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 50.0
        assert h.percentile(100) == 100.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_raw_window_caps_but_stats_stay_exact(self):
        h = Histogram()
        n = RAW_SAMPLE_CAP + 500
        for v in range(n):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == n
        assert s["max"] == float(n - 1)
        assert s["raw_dropped"] == 500

    def test_thread_safe_totals(self):
        h = Histogram()

        def hammer():
            for v in range(2_000):
                h.observe(float(v))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        s = h.summary()
        assert s["count"] == 16_000
        assert s["total"] == 8 * sum(range(2_000))
        assert s["min"] == 0.0
        assert s["max"] == 1999.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("b").add(2)
        reg.counter("a").add(1)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").add(5)
        reg.reset()
        assert reg.snapshot()["counters"] == {}
        # name is free to be rebound to another kind after reset
        reg.gauge("a").set(1.0)

    def test_module_hooks_under_concurrent_threads(self):
        instrument.enable()

        def hammer(i):
            for v in range(1_000):
                instrument.incr("shared.counter")
                instrument.observe("shared.histogram", float(v))
                instrument.set_gauge(f"gauge.{i}", float(v))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = instrument.get_registry().snapshot()
        assert snap["counters"]["shared.counter"] == 4_000
        assert snap["histograms"]["shared.histogram"]["count"] == 4_000
        assert all(snap["gauges"][f"gauge.{i}"] == 999.0 for i in range(4))
