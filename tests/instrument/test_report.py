"""JSON reporter round-trip, schema validation and the render table."""

import json

import pytest

from repro import instrument
from repro.instrument import (
    SCHEMA,
    build_report,
    iter_span_dicts,
    render_table,
    validate_report,
    write_report,
)


def _sample_report():
    """A small but fully populated report built through the real hooks."""
    with instrument.profiled({"experiment": "unit"}) as session:
        with instrument.span("outer", m=16) as outer:
            outer.record(1.0)
            outer.record(0.5)
            with instrument.span("inner"):
                instrument.incr("calls", 2)
                instrument.observe("residual", 0.25)
                instrument.set_gauge("size", 16)
    return session.report({"seed": 0})


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        report = _sample_report()
        assert json.loads(json.dumps(report)) == report

    def test_file_round_trip_via_write_report(self, tmp_path):
        report = _sample_report()
        path = tmp_path / "report.json"
        write_report(report, str(path))
        assert json.loads(path.read_text()) == report

    def test_report_contents(self):
        report = _sample_report()
        assert report["schema"] == SCHEMA
        assert report["meta"] == {"experiment": "unit", "seed": 0}
        (outer,) = report["spans"]
        assert outer["name"] == "outer"
        assert outer["attributes"] == {"m": 16}
        assert outer["trajectory"] == [1.0, 0.5]
        (inner,) = outer["children"]
        assert inner["name"] == "inner"
        assert report["span_summary"]["inner"]["count"] == 1
        assert report["metrics"]["counters"] == {"calls": 2.0}
        assert report["metrics"]["gauges"] == {"size": 16.0}
        assert report["metrics"]["histograms"]["residual"]["count"] == 1
        assert report["dropped_spans"] == 0

    def test_iter_span_dicts_covers_nested(self):
        report = _sample_report()
        names = sorted(s["name"] for s in iter_span_dicts(report))
        assert names == ["inner", "outer"]


class TestValidate:
    def test_valid_report_has_no_problems(self):
        assert validate_report(_sample_report()) == []

    def test_non_dict_rejected(self):
        assert validate_report([1, 2]) == ["report is not a JSON object"]

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda r: r.update(schema="nope"), "'schema'"),
            (lambda r: r.update(meta=None), "'meta'"),
            (lambda r: r.update(spans={}), "'spans'"),
            (lambda r: r.update(span_summary=3), "'span_summary'"),
            (lambda r: r.update(metrics=[]), "'metrics'"),
            (lambda r: r.update(dropped_spans=0.5), "'dropped_spans'"),
        ],
    )
    def test_top_level_violations(self, mutate, needle):
        report = _sample_report()
        mutate(report)
        problems = validate_report(report)
        assert problems, "expected a validation failure"
        assert any(needle in p for p in problems)

    def test_bad_span_fields_reported_with_path(self):
        report = _sample_report()
        report["spans"][0]["children"][0]["duration_s"] = -1.0
        report["spans"][0]["name"] = ""
        problems = validate_report(report)
        assert any("spans[0].children[0]" in p for p in problems)
        assert any("spans[0]" in p and "name" in p for p in problems)

    def test_bad_trajectory_rejected(self):
        report = _sample_report()
        report["spans"][0]["trajectory"] = [1.0, "nan"]
        assert any(
            "trajectory" in p for p in validate_report(report)
        )

    def test_write_report_refuses_invalid(self, tmp_path):
        report = _sample_report()
        report["schema"] = "wrong"
        with pytest.raises(ValueError, match="invalid report"):
            write_report(report, str(tmp_path / "bad.json"))
        assert not (tmp_path / "bad.json").exists()


class TestRenderTable:
    def test_mentions_spans_counters_histograms(self):
        text = render_table(_sample_report())
        assert "outer" in text
        assert "inner" in text
        assert "calls" in text
        assert "residual" in text
        assert "experiment=unit" in text

    def test_flags_dropped_spans(self):
        report = _sample_report()
        report["dropped_spans"] = 7
        assert "dropped spans: 7" in render_table(report)

    def test_empty_report_renders(self):
        report = build_report(
            instrument.Tracer(), instrument.MetricsRegistry()
        )
        assert validate_report(report) == []
        assert render_table(report) == ""
