"""Span nesting, timing monotonicity and the disabled no-op path."""

import threading
import time

import numpy as np

from repro import instrument
from repro.instrument.tracer import NULL_SPAN, TRAJECTORY_CAP, Tracer


class TestNesting:
    def test_children_attach_to_enclosing_span(self):
        instrument.enable()
        with instrument.span("outer"):
            with instrument.span("middle"):
                with instrument.span("inner"):
                    pass
            with instrument.span("sibling"):
                pass
        roots = instrument.get_tracer().roots
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["middle", "sibling"]
        assert [c.name for c in roots[0].children[0].children] == ["inner"]

    def test_sequential_roots_stay_separate(self):
        instrument.enable()
        with instrument.span("first"):
            pass
        with instrument.span("second"):
            pass
        assert [r.name for r in instrument.get_tracer().roots] == [
            "first",
            "second",
        ]

    def test_exception_closes_span_and_marks_error(self):
        instrument.enable()
        try:
            with instrument.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (root,) = instrument.get_tracer().roots
        assert root.attributes["error"] == "RuntimeError"
        assert root.duration_s >= 0.0
        # the stack unwound: a new span becomes a root, not a child
        with instrument.span("after"):
            pass
        assert [r.name for r in instrument.get_tracer().roots] == [
            "doomed",
            "after",
        ]

    def test_threads_get_independent_root_stacks(self):
        instrument.enable()

        def worker(i):
            with instrument.span(f"thread.{i}"):
                with instrument.span("child"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = instrument.get_tracer().roots
        assert sorted(r.name for r in roots) == [
            f"thread.{i}" for i in range(4)
        ]
        assert all(len(r.children) == 1 for r in roots)


class TestTiming:
    def test_duration_is_positive_and_contains_children(self):
        instrument.enable()
        with instrument.span("parent") as parent:
            time.sleep(0.002)
            with instrument.span("child") as child:
                time.sleep(0.002)
        assert child.duration_s > 0.0
        assert parent.duration_s >= child.duration_s
        assert parent.start_s <= child.start_s
        assert parent.end_s >= child.end_s

    def test_sibling_start_times_are_monotonic(self):
        instrument.enable()
        with instrument.span("parent") as parent:
            for i in range(5):
                with instrument.span(f"step.{i}"):
                    pass
        starts = [c.start_s for c in parent.children]
        assert starts == sorted(starts)
        ends = [c.end_s for c in parent.children]
        assert all(e >= s for s, e in zip(starts, ends))

    def test_summary_aggregates_per_name(self):
        instrument.enable()
        for _ in range(3):
            with instrument.span("repeated"):
                pass
        summary = instrument.get_tracer().summary()
        entry = summary["repeated"]
        assert entry["count"] == 3
        assert entry["min_s"] <= entry["mean_s"] <= entry["max_s"]
        assert abs(entry["total_s"] - 3 * entry["mean_s"]) < 1e-12


class TestRecording:
    def test_attributes_are_json_safe(self):
        instrument.enable()
        with instrument.span("s", m=np.int64(7)) as sp:
            sp.set(residual=np.float64(0.5), solver="fista", flag=True)
        attrs = instrument.get_tracer().roots[0].to_dict()["attributes"]
        assert attrs == {"m": 7, "residual": 0.5, "solver": "fista", "flag": True}
        assert type(attrs["m"]) is int

    def test_trajectory_caps_and_counts_drops(self):
        instrument.enable()
        with instrument.span("s") as sp:
            for i in range(TRAJECTORY_CAP + 10):
                sp.record(float(i))
        root = instrument.get_tracer().roots[0]
        assert len(root.trajectory) == TRAJECTORY_CAP
        assert root.trajectory_dropped == 10
        d = root.to_dict()
        assert d["trajectory_dropped"] == 10

    def test_tracer_span_cap_drops_and_counts(self):
        tracer = Tracer(max_spans=2)
        with tracer.span("a", **{}):
            pass
        with tracer.span("b", **{}):
            pass
        third = tracer.span("c", **{})
        assert third is NULL_SPAN
        assert tracer.dropped == 1


class TestDisabled:
    def test_span_returns_null_singleton(self):
        sp = instrument.span("anything", m=3)
        assert sp is NULL_SPAN
        assert sp.active is False
        with sp as inner:
            inner.set(ignored=1)
            inner.record(0.5)
        assert instrument.get_tracer().roots == []

    def test_metric_hooks_are_noops(self):
        instrument.incr("c")
        instrument.observe("h", 1.0)
        instrument.set_gauge("g", 2.0)
        snap = instrument.get_registry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_null_span_does_not_swallow_exceptions(self):
        try:
            with instrument.span("x"):
                raise ValueError("propagates")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("NULL_SPAN swallowed the exception")


class TestProfiled:
    def test_profiled_restores_disabled_state(self):
        assert not instrument.enabled()
        with instrument.profiled() as session:
            assert instrument.enabled()
            with instrument.span("inside"):
                pass
        assert not instrument.enabled()
        report = session.report({"k": "v"})
        assert report["meta"] == {"k": "v"}
        assert [s["name"] for s in report["spans"]] == ["inside"]

    def test_profiled_reset_first_clears_previous_data(self):
        instrument.enable()
        with instrument.span("stale"):
            pass
        with instrument.profiled():
            with instrument.span("fresh"):
                pass
        names = [r.name for r in instrument.get_tracer().roots]
        assert names == ["fresh"]
