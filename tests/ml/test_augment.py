"""Tests for the frame augmentation policy."""

import numpy as np
import pytest

from repro.ml.augment import Augmenter


def _frame():
    frame = np.zeros((16, 16))
    frame[4:10, 5:12] = 0.8
    return frame


class TestAugmentFrame:
    def test_output_in_unit_range(self):
        augmenter = Augmenter(seed=0)
        out = augmenter.augment_frame(_frame())
        assert out.shape == (16, 16)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_energy_roughly_preserved(self):
        augmenter = Augmenter(max_shift=1, gain_jitter=0.05, noise_sigma=0.0, seed=1)
        frame = _frame()
        out = augmenter.augment_frame(frame)
        assert out.sum() == pytest.approx(frame.sum(), rel=0.25)

    def test_identity_policy_is_identity(self):
        augmenter = Augmenter(max_shift=0, rotate=False, gain_jitter=0.0,
                              noise_sigma=0.0)
        frame = _frame()
        assert np.array_equal(augmenter.augment_frame(frame), frame)

    def test_variants_differ(self):
        augmenter = Augmenter(seed=2)
        frame = _frame()
        a = augmenter.augment_frame(frame)
        b = augmenter.augment_frame(frame)
        assert not np.array_equal(a, b)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Augmenter().augment_frame(np.zeros(16))


class TestExpand:
    def test_counts_and_labels(self):
        frames = np.stack([_frame()] * 4)
        labels = np.array([0, 1, 2, 3])
        out_frames, out_labels = Augmenter(seed=3).expand(frames, labels, copies=2)
        assert out_frames.shape == (12, 16, 16)
        assert np.array_equal(out_labels, np.tile(labels, 3))

    def test_zero_copies_passthrough(self):
        frames = np.stack([_frame()])
        out_frames, out_labels = Augmenter().expand(frames, np.array([5]), copies=0)
        assert np.array_equal(out_frames, frames)
        assert np.array_equal(out_labels, [5])

    def test_validation(self):
        augmenter = Augmenter()
        with pytest.raises(ValueError):
            augmenter.expand(np.zeros((2, 4, 4)), np.zeros(3))
        with pytest.raises(ValueError):
            augmenter.expand(np.zeros((2, 4, 4)), np.zeros(2), copies=-1)
        with pytest.raises(ValueError):
            Augmenter(max_shift=-1)
        with pytest.raises(ValueError):
            Augmenter(gain_jitter=1.0)

    def test_augmented_training_not_worse(self):
        """Augmentation keeps (or improves) generalisation on a small
        tactile task -- a smoke check that the transforms are label-
        preserving."""
        from repro.datasets import make_tactile_dataset
        from repro.ml import Trainer, build_resnet

        train = make_tactile_dataset(8, seed=0, num_classes=4)
        val = make_tactile_dataset(4, seed=50, num_classes=4)
        # Shift-only policy: 90-degree rotations can alias one grasp
        # signature into another, so they are not label-preserving for
        # this dataset.
        augmenter = Augmenter(seed=4, rotate=False, noise_sigma=0.005,
                              gain_jitter=0.05, max_shift=1)
        frames, labels = augmenter.expand(train.frames, train.labels, copies=1)
        model = build_resnet(num_classes=4, channels=(8, 16), seed=0)
        history = Trainer(max_epochs=12, seed=0).fit(
            model, frames, labels, val.frames, val.labels
        )
        assert max(history.val_accuracy) > 0.4
