"""Gradient-checked tests for the NumPy CNN layers."""

import numpy as np
import pytest

from repro.ml.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2d,
    ReLU,
    ResidualBlock,
)


def _numeric_input_gradient(layer, x, training=True, delta=1e-6):
    """Finite-difference gradient of sum(layer(x)) w.r.t. x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    out_grad = None
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + delta
        up = layer.forward(x, training).sum()
        flat[i] = original - delta
        down = layer.forward(x, training).sum()
        flat[i] = original
        grad.ravel()[i] = (up - down) / (2 * delta)
    return grad


def _check_input_gradient(layer, x, training=True, tolerance=1e-5):
    output = layer.forward(x, training)
    analytic = layer.backward(np.ones_like(output))
    numeric = _numeric_input_gradient(layer, x, training)
    assert np.allclose(analytic, numeric, atol=tolerance), (
        f"max err {np.max(np.abs(analytic - numeric))}"
    )


def _check_parameter_gradients(layer, x, training=True, tolerance=1e-4):
    output = layer.forward(x, training)
    layer.backward(np.ones_like(output))
    for name, value, analytic in layer.parameters():
        numeric = np.zeros_like(value)
        flat = value.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + 1e-6
            up = layer.forward(x, training).sum()
            flat[i] = original - 1e-6
            down = layer.forward(x, training).sum()
            flat[i] = original
            numeric.ravel()[i] = (up - down) / 2e-6
        # re-run forward/backward to restore analytic grads for `value`
        layer.forward(x, training)
        layer.backward(np.ones_like(output))
        assert np.allclose(analytic, numeric, atol=tolerance), (
            f"{name}: max err {np.max(np.abs(analytic - numeric))}"
        )


class TestConv2d:
    def test_output_shape_same_padding(self):
        conv = Conv2d(2, 3, kernel=3)
        out = conv.forward(np.zeros((4, 2, 8, 8)))
        assert out.shape == (4, 3, 8, 8)

    def test_stride_halves(self):
        conv = Conv2d(1, 2, kernel=3, stride=2)
        out = conv.forward(np.zeros((1, 1, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_input_gradient(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 3, kernel=3, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        _check_input_gradient(conv, x)

    def test_parameter_gradients(self):
        rng = np.random.default_rng(1)
        conv = Conv2d(1, 2, kernel=3, rng=rng)
        x = rng.normal(size=(2, 1, 4, 4))
        _check_parameter_gradients(conv, x)

    def test_identity_kernel(self):
        conv = Conv2d(1, 1, kernel=1, padding=0)
        conv.weight[...] = 1.0
        conv.bias[...] = 0.0
        x = np.random.default_rng(2).normal(size=(1, 1, 4, 4))
        assert np.allclose(conv.forward(x), x)

    def test_validation(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1)


class TestBatchNorm2d:
    def test_normalizes_in_training(self):
        rng = np.random.default_rng(3)
        bn = BatchNorm2d(3)
        x = rng.normal(3.0, 2.0, size=(8, 3, 4, 4))
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_track(self):
        rng = np.random.default_rng(4)
        bn = BatchNorm2d(1, momentum=0.0)  # adopt batch stats immediately
        x = rng.normal(5.0, 1.0, size=(16, 1, 4, 4))
        bn.forward(x, training=True)
        assert bn.running_mean[0] == pytest.approx(5.0, abs=0.2)

    def test_inference_uses_running_stats(self):
        bn = BatchNorm2d(1, momentum=0.0)
        x = np.random.default_rng(5).normal(size=(4, 1, 3, 3))
        bn.forward(x, training=True)
        out1 = bn.forward(x[:1], training=False)
        out2 = bn.forward(x[:1], training=False)
        assert np.array_equal(out1, out2)

    def test_input_gradient(self):
        rng = np.random.default_rng(6)
        bn = BatchNorm2d(2)
        x = rng.normal(size=(3, 2, 3, 3))
        # sum-reduction makes mean-term gradients vanish; use a random
        # upstream gradient instead for a meaningful check
        out = bn.forward(x, training=True)
        upstream = rng.normal(size=out.shape)
        analytic = bn.backward(upstream)
        numeric = np.zeros_like(x)
        flat = x.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + 1e-6
            up = (bn.forward(x, training=True) * upstream).sum()
            flat[i] = original - 1e-6
            down = (bn.forward(x, training=True) * upstream).sum()
            flat[i] = original
            numeric.ravel()[i] = (up - down) / 2e-6
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_state_roundtrip_includes_running_stats(self):
        bn = BatchNorm2d(2)
        bn.forward(np.random.default_rng(7).normal(size=(4, 2, 3, 3)), training=True)
        state = bn.state()
        fresh = BatchNorm2d(2)
        fresh.load_state(state)
        assert np.array_equal(fresh.running_mean, bn.running_mean)
        assert np.array_equal(fresh.running_var, bn.running_var)


class TestSimpleLayers:
    def test_relu_gradient(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(3, 2, 4, 4))
        _check_input_gradient(ReLU(), x)

    def test_maxpool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert np.array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_gradient(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(2, 2, 4, 4))
        _check_input_gradient(MaxPool2d(2), x)

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.zeros((1, 1, 5, 5)))

    def test_maxpool_tie_gradient_goes_to_one_pixel(self):
        x = np.zeros((1, 1, 2, 2))  # all equal: 4-way tie
        pool = MaxPool2d(2)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 1, 1)))
        assert grad.sum() == pytest.approx(1.0)

    def test_dropout_inference_identity(self):
        x = np.random.default_rng(10).normal(size=(4, 4))
        drop = Dropout(0.5)
        assert np.array_equal(drop.forward(x, training=False), x)

    def test_dropout_training_scales(self):
        rng = np.random.default_rng(11)
        drop = Dropout(0.5, rng=rng)
        x = np.ones((200, 200))
        out = drop.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)
        assert (out == 0).mean() == pytest.approx(0.5, abs=0.02)

    def test_dropout_backward_uses_same_mask(self):
        drop = Dropout(0.5, rng=np.random.default_rng(12))
        x = np.ones((10, 10))
        out = drop.forward(x, training=True)
        grad = drop.backward(np.ones_like(x))
        assert np.array_equal(grad == 0, out == 0)

    def test_flatten_roundtrip(self):
        x = np.random.default_rng(13).normal(size=(3, 2, 4, 5))
        flat = Flatten()
        out = flat.forward(x)
        assert out.shape == (3, 40)
        assert flat.backward(out).shape == x.shape

    def test_global_avg_pool_gradient(self):
        rng = np.random.default_rng(14)
        x = rng.normal(size=(2, 3, 4, 4))
        _check_input_gradient(GlobalAvgPool(), x)

    def test_dense_gradients(self):
        rng = np.random.default_rng(15)
        dense = Dense(6, 4, rng=rng)
        x = rng.normal(size=(3, 6))
        _check_input_gradient(dense, x)
        _check_parameter_gradients(dense, x)


class TestResidualBlock:
    def test_identity_skip_shape(self):
        rng = np.random.default_rng(16)
        block = ResidualBlock(4, 4, rng=rng)
        out = block.forward(np.zeros((2, 4, 8, 8)), training=True)
        assert out.shape == (2, 4, 8, 8)
        assert block.projection is None

    def test_projection_when_channels_change(self):
        block = ResidualBlock(2, 6)
        assert block.projection is not None
        out = block.forward(np.zeros((1, 2, 4, 4)), training=True)
        assert out.shape == (1, 6, 4, 4)

    def test_input_gradient(self):
        rng = np.random.default_rng(17)
        block = ResidualBlock(2, 2, rng=rng)
        x = rng.normal(size=(2, 2, 4, 4))
        out = block.forward(x, training=True)
        upstream = rng.normal(size=out.shape)
        analytic = block.backward(upstream)
        numeric = np.zeros_like(x)
        flat = x.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + 1e-6
            up = (block.forward(x, training=True) * upstream).sum()
            flat[i] = original - 1e-6
            down = (block.forward(x, training=True) * upstream).sum()
            flat[i] = original
            numeric.ravel()[i] = (up - down) / 2e-6
        assert np.allclose(analytic, numeric, atol=1e-3)

    def test_state_roundtrip(self):
        rng = np.random.default_rng(18)
        block = ResidualBlock(2, 3, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        reference = block.forward(x, training=False)
        state = block.state()
        other = ResidualBlock(2, 3, rng=np.random.default_rng(99))
        other.load_state(state)
        assert np.allclose(other.forward(x, training=False), reference)
