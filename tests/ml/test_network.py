"""Tests for the Sequential container, loss and optimisers."""

import numpy as np
import pytest

from repro.ml.layers import Dense, ReLU
from repro.ml.network import Adam, Sequential, Sgd, cross_entropy_loss, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 7))
        probabilities = softmax(logits)
        assert np.allclose(probabilities.sum(axis=-1), 1.0)
        assert np.all(probabilities > 0)

    def test_shift_invariant(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_extreme_logits_stable(self):
        probabilities = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probabilities).all()
        assert probabilities[0, 0] == pytest.approx(1.0)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = cross_entropy_loss(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((4, 8))
        loss, _ = cross_entropy_loss(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(8))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 2, 4])
        _, analytic = cross_entropy_loss(logits, labels)
        numeric = np.zeros_like(logits)
        flat = logits.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + 1e-6
            up, _ = cross_entropy_loss(logits, labels)
            flat[i] = original - 1e-6
            down, _ = cross_entropy_loss(logits, labels)
            flat[i] = original
            numeric.ravel()[i] = (up - down) / 2e-6
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_label_shape_checked(self):
        with pytest.raises(ValueError):
            cross_entropy_loss(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestSequential:
    def _toy_model(self, seed=0):
        rng = np.random.default_rng(seed)
        return Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 3, rng=rng)])

    def test_forward_backward_shapes(self):
        model = self._toy_model()
        x = np.random.default_rng(1).normal(size=(5, 4))
        out = model.forward(x)
        assert out.shape == (5, 3)
        grad = model.backward(np.ones((5, 3)))
        assert grad.shape == (5, 4)

    def test_predict_batches(self):
        model = self._toy_model()
        x = np.random.default_rng(2).normal(size=(10, 4))
        predictions = model.predict(x, batch_size=3)
        assert predictions.shape == (10,)
        assert np.all((0 <= predictions) & (predictions < 3))

    def test_state_roundtrip(self):
        model = self._toy_model(seed=3)
        x = np.random.default_rng(4).normal(size=(2, 4))
        reference = model.forward(x)
        state = model.state()
        other = self._toy_model(seed=77)
        other.load_state(state)
        assert np.allclose(other.forward(x), reference)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestOptimisers:
    def _loss_after_steps(self, optimizer, steps=60, seed=5):
        rng = np.random.default_rng(seed)
        model = Sequential([Dense(4, 16, rng=rng), ReLU(), Dense(16, 3, rng=rng)])
        x = rng.normal(size=(24, 4))
        labels = rng.integers(0, 3, size=24)
        loss = None
        for _ in range(steps):
            logits = model.forward(x, training=True)
            loss, grad = cross_entropy_loss(logits, labels)
            model.backward(grad)
            optimizer.step(model.parameters())
        return loss

    def test_adam_reduces_loss(self):
        final = self._loss_after_steps(Adam(1e-2), steps=150)
        initial = np.log(3)  # uniform-prediction loss for 3 classes
        assert final < 0.5 * initial

    def test_sgd_reduces_loss(self):
        final = self._loss_after_steps(Sgd(0.5, momentum=0.9), steps=120)
        assert final < 0.8

    def test_adam_beats_plain_sgd_early(self):
        adam_loss = self._loss_after_steps(Adam(1e-2), steps=30)
        sgd_loss = self._loss_after_steps(Sgd(1e-2), steps=30)
        assert adam_loss < sgd_loss

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(0.0)
        with pytest.raises(ValueError):
            Sgd(1e-2, momentum=1.0)
