"""Tests for the ResNet builder and the paper's training recipe."""

import numpy as np
import pytest

from repro.datasets import make_tactile_dataset
from repro.ml.resnet import build_resnet
from repro.ml.training import Trainer


class TestBuildResnet:
    def test_output_shape(self):
        model = build_resnet(num_classes=26, channels=(4, 8))
        x = np.zeros((3, 1, 32, 32))
        assert model.forward(x).shape == (3, 26)

    def test_pooling_divisibility_checked(self):
        with pytest.raises(ValueError):
            build_resnet(input_shape=(30, 30), channels=(4, 8))

    def test_blocks_per_stage_validated(self):
        with pytest.raises(ValueError):
            build_resnet(blocks_per_stage=0)

    def test_seed_reproducible(self):
        a = build_resnet(channels=(4,), seed=3)
        b = build_resnet(channels=(4,), seed=3)
        x = np.random.default_rng(0).normal(size=(2, 1, 32, 32))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_contains_paper_ingredients(self):
        """Max pooling and dropout, as quoted in Sec. 4.2."""
        from repro.ml.layers import Dropout, MaxPool2d

        model = build_resnet(channels=(4, 8))
        kinds = {type(layer) for layer in model.layers}
        assert MaxPool2d in kinds
        assert Dropout in kinds


class TestTrainer:
    @pytest.fixture(scope="class")
    def tiny_task(self):
        train = make_tactile_dataset(15, seed=0, num_classes=5)
        val = make_tactile_dataset(4, seed=50, num_classes=5)
        return train, val

    def test_overfits_small_problem(self, tiny_task):
        train, val = tiny_task
        model = build_resnet(num_classes=5, channels=(8, 16), seed=1)
        trainer = Trainer(max_epochs=20, seed=0)
        history = trainer.fit(
            model, train.frames, train.labels, val.frames, val.labels
        )
        assert history.train_loss[-1] < history.train_loss[0]
        assert max(history.val_accuracy) > 0.5

    def test_best_weights_restored(self, tiny_task):
        train, val = tiny_task
        model = build_resnet(num_classes=5, channels=(4,), seed=2)
        trainer = Trainer(max_epochs=6, seed=0)
        history = trainer.fit(
            model, train.frames, train.labels, val.frames, val.labels
        )
        val_logits = model.forward(val.frames[:, None, :, :], training=False)
        accuracy = float(
            np.mean(np.argmax(val_logits, axis=-1) == val.labels)
        )
        assert accuracy == pytest.approx(max(history.val_accuracy), abs=1e-9)

    def test_lr_reduction_triggers_on_plateau(self, tiny_task):
        train, val = tiny_task
        model = build_resnet(num_classes=5, channels=(4,), seed=3)
        # A vanishing learning rate guarantees a validation plateau, so
        # with patience 1 the LR must be reduced and training must then
        # continue at the lower rate (min_lr far below).
        trainer = Trainer(
            max_epochs=8, lr_patience=1, learning_rate=1e-8, min_lr=1e-14,
            seed=0,
        )
        history = trainer.fit(
            model, train.frames, train.labels, val.frames, val.labels
        )
        assert min(history.learning_rates) < 1e-8

    def test_input_rank_checked(self, tiny_task):
        train, val = tiny_task
        model = build_resnet(num_classes=5, channels=(4,))
        trainer = Trainer(max_epochs=1)
        with pytest.raises(ValueError):
            trainer.fit(
                model,
                train.frames[:, None, :, :],  # wrong: already 4-D
                train.labels,
                val.frames,
                val.labels,
            )

    def test_history_best_epoch(self, tiny_task):
        train, val = tiny_task
        model = build_resnet(num_classes=5, channels=(4,), seed=4)
        history = Trainer(max_epochs=3, seed=0).fit(
            model, train.frames, train.labels, val.frames, val.labels
        )
        assert 0 <= history.best_epoch < 3
