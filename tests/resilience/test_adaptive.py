"""Unit tests for the adaptive self-tuning policy controller."""

import numpy as np
import pytest

from repro.core.engine import DecodeContext
from repro.core.strategies import OracleExclusionStrategy, ResamplingStrategy
from repro.resilience import (
    AdaptivePolicy,
    CircuitBreaker,
    ResiliencePolicy,
    ResilientDecoder,
    ResilientStrategy,
)


def _smooth_frame(shape=(8, 8)):
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    return 0.2 + 0.6 * np.exp(-((r - 4) ** 2 + (c - 4) ** 2) / 8.0)


class TestValidation:
    def test_defaults_valid(self):
        AdaptivePolicy()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(window=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(high_fault_ratio=0.0)
        with pytest.raises(ValueError):
            AdaptivePolicy(calm_frames=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(probe_iterations=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(max_excluded_fraction=1.0)


class TestEscalation:
    def test_starts_at_base_policy(self):
        base = ResiliencePolicy()
        adaptive = AdaptivePolicy(base=base)
        assert adaptive.level == 0
        assert adaptive.policy is base

    def test_degraded_escalates_to_level_one(self):
        adaptive = AdaptivePolicy()
        adaptive.observe_status("degraded")
        assert adaptive.level == 1
        policy = adaptive.policy
        base = adaptive.base
        assert len(policy.fallback_chain) > len(base.fallback_chain)
        assert policy.retry.max_rounds == base.retry.max_rounds + 1
        for extra in adaptive.extra_solvers:
            assert extra in policy.fallback_chain

    def test_fallback_escalates_to_level_two(self):
        adaptive = AdaptivePolicy()
        adaptive.observe_status("fallback")
        assert adaptive.level == 2
        assert (
            adaptive.policy.retry.max_rounds
            == adaptive.base.retry.max_rounds + 2
        )

    def test_high_fault_ratio_escalates_to_level_two(self):
        adaptive = AdaptivePolicy(window=4, high_fault_ratio=0.5)
        adaptive.observe_status("ok")
        adaptive.observe_status("degraded")
        assert adaptive.level == 1
        adaptive.observe_status("degraded")  # 2 of window 4 faulty >= 0.5
        assert adaptive.level == 2

    def test_base_policy_untouched(self):
        base = ResiliencePolicy()
        chain_before = base.fallback_chain
        adaptive = AdaptivePolicy(base=base)
        adaptive.observe_status("fallback")
        assert base.fallback_chain == chain_before
        assert base.retry.max_rounds == 2

    def test_escalated_policy_shares_breaker(self):
        adaptive = AdaptivePolicy()
        adaptive.observe_status("degraded")
        assert adaptive.policy.breaker is adaptive.base.breaker


class TestDeEscalation:
    def test_calm_streak_steps_down(self):
        adaptive = AdaptivePolicy(calm_frames=3)
        adaptive.observe_status("fallback")
        assert adaptive.level == 2
        for _ in range(3):
            adaptive.observe_status("ok")
        assert adaptive.level == 1
        for _ in range(3):
            adaptive.observe_status("ok")
        assert adaptive.level == 0
        assert adaptive.policy.fallback_chain == (
            adaptive.base.fallback_chain
        )

    def test_fault_resets_calm_streak(self):
        adaptive = AdaptivePolicy(calm_frames=3)
        adaptive.observe_status("degraded")
        adaptive.observe_status("ok")
        adaptive.observe_status("ok")
        adaptive.observe_status("degraded")
        adaptive.observe_status("ok")
        adaptive.observe_status("ok")
        assert adaptive.level == 1  # never reached 3 consecutive oks


class TestProbeBudgets:
    def test_open_breaker_caps_budget(self):
        breaker = CircuitBreaker(failure_threshold=1)
        base = ResiliencePolicy(breaker=breaker)
        adaptive = AdaptivePolicy(base=base, probe_iterations=25)
        breaker.record_failure("fista")
        adaptive.observe_status("degraded")
        budget = adaptive.policy.budget_for("fista")
        assert budget.max_iterations == 25
        assert budget.time_limit_s is None  # stays deterministic

    def test_reclosed_breaker_restores_budget(self):
        breaker = CircuitBreaker(failure_threshold=1)
        base = ResiliencePolicy(breaker=breaker)
        adaptive = AdaptivePolicy(base=base, probe_iterations=25)
        breaker.record_failure("fista")
        adaptive.observe_status("degraded")
        breaker.record_success("fista")
        adaptive.observe_status("ok")
        assert adaptive.policy.budget_for("fista").max_iterations is None


class TestExclusionMask:
    def test_mask_accumulates(self):
        adaptive = AdaptivePolicy()
        mask_a = np.zeros((8, 8), dtype=bool)
        mask_a[2, :] = True
        mask_b = np.zeros((8, 8), dtype=bool)
        mask_b[5, :] = True
        adaptive.observe_readout(mask_a)
        adaptive.observe_readout(mask_b)
        merged = adaptive.exclusion_mask((8, 8))
        assert merged[2, :].all() and merged[5, :].all()
        assert merged.sum() == 16

    def test_empty_detection_ignored(self):
        adaptive = AdaptivePolicy()
        adaptive.observe_readout(np.zeros((8, 8), dtype=bool))
        assert adaptive.exclusion_mask((8, 8)) is None

    def test_cap_rejects_starving_mask(self):
        adaptive = AdaptivePolicy(max_excluded_fraction=0.25)
        small = np.zeros((8, 8), dtype=bool)
        small[0, :] = True
        adaptive.observe_readout(small)
        huge = np.ones((8, 8), dtype=bool)
        adaptive.observe_readout(huge)
        mask = adaptive.exclusion_mask((8, 8))
        assert mask.sum() == 8  # the capped detection was dropped
        actions = [e.action for e in adaptive.pop_events()]
        assert "mask_capped" in actions

    def test_shape_change_restarts_mask(self):
        adaptive = AdaptivePolicy()
        old = np.zeros((8, 8), dtype=bool)
        old[1, :] = True
        adaptive.observe_readout(old)
        new = np.zeros((4, 4), dtype=bool)
        new[0, :] = True
        adaptive.observe_readout(new)
        assert adaptive.exclusion_mask((8, 8)) is None
        assert adaptive.exclusion_mask((4, 4)).sum() == 4

    def test_returned_mask_is_a_copy(self):
        adaptive = AdaptivePolicy()
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, :] = True
        adaptive.observe_readout(mask)
        adaptive.exclusion_mask((8, 8))[:] = True
        assert adaptive.exclusion_mask((8, 8)).sum() == 8


class TestEventsAndReset:
    def test_events_recorded_and_drained(self):
        adaptive = AdaptivePolicy()
        adaptive.observe_status("fallback")
        events = adaptive.pop_events()
        assert any(e.action == "escalate" for e in events)
        assert events[0].to_dict()["action"] == events[0].action
        assert adaptive.pop_events() == ()

    def test_reset_restores_initial_state(self):
        adaptive = AdaptivePolicy()
        adaptive.observe_status("fallback")
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, :] = True
        adaptive.observe_readout(mask)
        adaptive.reset()
        assert adaptive.level == 0
        assert adaptive.policy is adaptive.base
        assert adaptive.exclusion_mask((8, 8)) is None
        assert adaptive.pop_events() == ()


class TestDecoderIntegration:
    def test_outcome_carries_snapshot_and_events(self):
        decoder = ResilientDecoder(adaptive=AdaptivePolicy())
        outcome = decoder.decode(
            _smooth_frame(), 0.5, np.random.default_rng(0)
        )
        assert outcome.policy_snapshot is not None
        assert "fallback_chain" in outcome.policy_snapshot
        payload = outcome.to_dict()
        assert payload["policy_snapshot"] == outcome.policy_snapshot
        assert isinstance(payload["adaptation_events"], list)

    def test_snapshot_present_without_adaptive(self):
        decoder = ResilientDecoder()
        outcome = decoder.decode(
            _smooth_frame(), 0.5, np.random.default_rng(0)
        )
        assert outcome.policy_snapshot["fallback_chain"] == list(
            decoder.policy.fallback_chain
        )
        assert outcome.adaptation_events == ()

    def test_decoder_tracks_adaptive_policy(self):
        adaptive = AdaptivePolicy()
        decoder = ResilientDecoder(adaptive=adaptive)
        adaptive.observe_status("degraded")  # escalate out of band
        decoder.decode(_smooth_frame(), 0.5, np.random.default_rng(0))
        assert decoder.policy.retry.max_rounds >= 3

    def test_adaptive_mask_merged_into_exclusions(self):
        adaptive = AdaptivePolicy()
        mask = np.zeros((8, 8), dtype=bool)
        mask[3, :] = True
        adaptive.observe_readout(mask)
        decoder = ResilientDecoder(adaptive=adaptive)
        outcome = decoder.decode(
            _smooth_frame(), 0.5, np.random.default_rng(0)
        )
        assert outcome.frame.shape == (8, 8)


class TestStrategyMaskPlumbing:
    def test_exclude_mask_reaches_inner_strategy(self):
        captured = {}

        class Probe:
            solver = "fista"
            solver_options = {}

            def reconstruct(self, corrupted, rng, error_mask=None, **_):
                captured["mask"] = error_mask
                return np.asarray(corrupted, dtype=float)

        mask = np.zeros((8, 8), dtype=bool)
        mask[1, :] = True
        wrapped = ResilientStrategy(inner=Probe(), exclude_mask=mask)
        wrapped.reconstruct(_smooth_frame(), np.random.default_rng(0))
        assert captured["mask"] is not None
        assert captured["mask"][1, :].all()

    def test_exclude_mask_merges_with_caller_mask(self):
        captured = {}

        class Probe:
            solver = "fista"
            solver_options = {}

            def reconstruct(self, corrupted, rng, error_mask=None, **_):
                captured["mask"] = error_mask
                return np.asarray(corrupted, dtype=float)

        sticky = np.zeros((8, 8), dtype=bool)
        sticky[1, :] = True
        caller = np.zeros((8, 8), dtype=bool)
        caller[:, 2] = True
        wrapped = ResilientStrategy(inner=Probe(), exclude_mask=sticky)
        wrapped.reconstruct(
            _smooth_frame(), np.random.default_rng(0), error_mask=caller
        )
        assert captured["mask"][1, :].all() and captured["mask"][:, 2].all()

    def test_resampling_strategy_accepts_error_mask(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, :] = True
        strategy = ResamplingStrategy(rounds=2)
        recon = strategy.reconstruct(
            _smooth_frame(), np.random.default_rng(0), error_mask=mask
        )
        assert recon.shape == (8, 8)

    def test_wrapped_oracle_strategy_end_to_end(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, :] = True
        wrapped = ResilientStrategy(
            inner=OracleExclusionStrategy(), exclude_mask=mask
        )
        recon = wrapped.reconstruct(_smooth_frame(), np.random.default_rng(0))
        assert recon.shape == (8, 8)
        assert wrapped.last_outcome.status in ("ok", "degraded")


class TestWithExclusions:
    def test_none_returns_same_plan(self):
        plan = DecodeContext(shape=(8, 8), sampling_fraction=0.5)
        assert plan.with_exclusions(None) is plan

    def test_all_false_returns_same_plan(self):
        plan = DecodeContext(shape=(8, 8), sampling_fraction=0.5)
        assert plan.with_exclusions(np.zeros((8, 8), dtype=bool)) is plan

    def test_merges_with_existing_mask(self):
        existing = np.zeros((8, 8), dtype=bool)
        existing[0, :] = True
        plan = DecodeContext(
            shape=(8, 8), sampling_fraction=0.5, exclude_mask=existing
        )
        extra = np.zeros((8, 8), dtype=bool)
        extra[:, 0] = True
        merged = plan.with_exclusions(extra)
        assert merged.exclude_mask[0, :].all()
        assert merged.exclude_mask[:, 0].all()

    def test_shape_mismatch_rejected(self):
        plan = DecodeContext(shape=(8, 8), sampling_fraction=0.5)
        with pytest.raises(ValueError):
            plan.with_exclusions(np.zeros((4, 4), dtype=bool))
