"""Acceptance test: adaptive policy beats static under array-layer chaos.

Streams 20 frames through the hardware-modelled imager while stuck-row
and ADC bit-flip injectors fire at a 20% rate each, and checks the
ISSUE's acceptance criteria: every frame delivered under both arms, the
adaptive arm achieves strictly lower mean RMSE than the static default
policy, and both arms are bit-reproducible under fixed seeds.
"""

import numpy as np

from repro.array import ActiveMatrix, FlexibleEncoder, ReadoutChain, StreamingImager
from repro.core import rmse
from repro.resilience import (
    AdaptivePolicy,
    AdcBitFlipInjector,
    ResiliencePolicy,
    StuckPixelRowInjector,
    chaos,
)

SHAPE = (16, 16)
FRAMES = 20
SEED = 0


def _scene() -> np.ndarray:
    # 0.15 pedestal keeps healthy rows off the ADC zero rail so only
    # injected faults trip the stuck-line detector.
    r, c = np.mgrid[0 : SHAPE[0], 0 : SHAPE[1]]
    frames = []
    for k in range(FRAMES):
        cy = SHAPE[0] * (0.45 + 0.1 * np.sin(0.25 * k))
        cx = SHAPE[1] * (0.5 + 0.12 * np.cos(0.2 * k))
        blob = np.exp(-((r - cy) ** 2 + (c - cx) ** 2) / 12.0)
        frames.append(np.clip(0.15 + 0.8 * blob, 0.0, 1.0))
    return np.stack(frames)


def _run_arm(scene: np.ndarray, adaptive: AdaptivePolicy | None) -> list:
    encoder = FlexibleEncoder(
        ActiveMatrix(SHAPE), readout=ReadoutChain(noise_sigma_v=0.0)
    )
    imager = StreamingImager(
        encoder,
        sampling_fraction=0.5,
        policy=None if adaptive is not None else ResiliencePolicy(),
        adaptive=adaptive,
        seed=SEED,
    )
    with chaos(
        StuckPixelRowInjector(rate=0.2, seed=SEED + 100),
        AdcBitFlipInjector(rate=0.2, seed=SEED + 101),
    ):
        return imager.stream(scene)


class TestAdaptiveBeatsStatic:
    def test_acceptance(self):
        scene = _scene()
        static = _run_arm(scene, adaptive=None)
        adaptive_ctrl = AdaptivePolicy()
        adaptive = _run_arm(scene, adaptive=adaptive_ctrl)

        # Every frame delivered under both arms.
        assert len(static) == FRAMES and len(adaptive) == FRAMES
        for record in static + adaptive:
            assert record.reconstructed is not None
            assert record.reconstructed.shape == SHAPE
            assert np.isfinite(record.reconstructed).all()

        # Adaptive arm strictly beats the static default policy.
        static_mean = np.mean(
            [rmse(r.clean, r.reconstructed) for r in static]
        )
        adaptive_mean = np.mean(
            [rmse(r.clean, r.reconstructed) for r in adaptive]
        )
        assert adaptive_mean < static_mean

        # The win came through the feedback loop: stuck lines were
        # detected and excluded from subsequent sampling.
        mask = adaptive_ctrl.exclusion_mask(SHAPE)
        assert mask is not None and mask.any()

    def test_bit_reproducible(self):
        scene = _scene()
        for adaptive_factory in (lambda: None, AdaptivePolicy):
            first = _run_arm(scene, adaptive_factory())
            second = _run_arm(scene, adaptive_factory())
            for a, b in zip(first, second):
                np.testing.assert_array_equal(a.corrupted, b.corrupted)
                np.testing.assert_array_equal(
                    a.reconstructed, b.reconstructed
                )
                assert a.status == b.status
