"""Unit tests for the array-layer fault injectors."""

import numpy as np
import pytest

from repro.array import ActiveMatrix, FlexibleEncoder, ReadoutChain
from repro.array.drivers import ScanDrivers
from repro.array.hooks import array_hooks
from repro.array.readout import detect_stuck_lines
from repro.array.scanner import ScanSchedule
from repro.core.sensing import RowSamplingMatrix
from repro.core.solvers import solve_hooks
from repro.resilience import (
    AdcBitFlipInjector,
    DroppedCycleInjector,
    GainDriftInjector,
    SaturationBurstInjector,
    SolverExceptionInjector,
    StuckLineInjector,
    StuckPixelRowInjector,
    chaos,
    default_array_taxonomy,
    default_taxonomy,
)

SHAPE = (8, 8)


def _phi(fraction=0.6, seed=0):
    n = SHAPE[0] * SHAPE[1]
    return RowSamplingMatrix.random(
        n, int(fraction * n), np.random.default_rng(seed)
    )


def _drive_all(drivers, schedule):
    return list(drivers.drive(schedule))


def _smooth_frame():
    r, c = np.mgrid[0 : SHAPE[0], 0 : SHAPE[1]]
    return 0.2 + 0.6 * np.exp(-((r - 4) ** 2 + (c - 4) ** 2) / 8.0)


class TestLayerDispatch:
    def test_array_injector_attaches_to_array_seam(self):
        solver_baseline = len(solve_hooks())
        array_baseline = len(array_hooks())
        with chaos(DroppedCycleInjector(rate=0.0)):
            assert len(array_hooks()) == array_baseline + 1
            assert len(solve_hooks()) == solver_baseline
        assert len(array_hooks()) == array_baseline

    def test_mixed_layer_campaign(self):
        solver_baseline = len(solve_hooks())
        array_baseline = len(array_hooks())
        with chaos(
            SolverExceptionInjector(rate=0.0),
            DroppedCycleInjector(rate=0.0),
        ):
            assert len(solve_hooks()) == solver_baseline + 1
            assert len(array_hooks()) == array_baseline + 1
        assert len(solve_hooks()) == solver_baseline
        assert len(array_hooks()) == array_baseline

    def test_hooks_removed_on_error(self):
        baseline = len(array_hooks())
        with pytest.raises(RuntimeError):
            with chaos(DroppedCycleInjector(rate=0.0)):
                raise RuntimeError("boom")
        assert len(array_hooks()) == baseline


class TestStuckLineInjector:
    def test_dead_line_never_read(self):
        drivers = ScanDrivers(SHAPE)
        schedule = ScanSchedule.from_phi(_phi(1.0), SHAPE)
        injector = StuckLineInjector(rate=1.0, seed=0, mode="dead", max_lines=1)
        with chaos(injector):
            cycles = _drive_all(drivers, schedule)
        assert injector.trips >= 1
        (dead_row,) = injector.stuck_rows
        for _, row_mask in cycles:
            assert not row_mask[dead_row]

    def test_stuck_on_line_always_asserted(self):
        drivers = ScanDrivers(SHAPE)
        schedule = ScanSchedule.from_phi(_phi(1.0), SHAPE)
        injector = StuckLineInjector(
            rate=1.0, seed=0, mode="stuck_on", max_lines=1
        )
        with chaos(injector):
            cycles = _drive_all(drivers, schedule)
        (stuck_row,) = injector.stuck_rows
        # Once stuck, the row asserts on every later cycle.
        assert all(row_mask[stuck_row] for _, row_mask in cycles[1:])

    def test_max_lines_cap(self):
        drivers = ScanDrivers(SHAPE)
        schedule = ScanSchedule.from_phi(_phi(1.0), SHAPE)
        injector = StuckLineInjector(rate=1.0, seed=0, max_lines=2)
        with chaos(injector):
            _drive_all(drivers, schedule)
            _drive_all(drivers, schedule)
        assert len(injector.stuck_rows) <= 2

    def test_reset_clears_stuck_rows(self):
        drivers = ScanDrivers(SHAPE)
        schedule = ScanSchedule.from_phi(_phi(1.0), SHAPE)
        injector = StuckLineInjector(rate=1.0, seed=5, max_lines=2)
        with chaos(injector):
            _drive_all(drivers, schedule)
        first_rows = injector.stuck_rows
        assert first_rows
        injector.reset()
        assert injector.stuck_rows == ()
        assert injector.trips == 0
        with chaos(injector):
            _drive_all(drivers, schedule)
        assert injector.stuck_rows == first_rows  # bit-identical replay

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            StuckLineInjector(mode="flaky")
        with pytest.raises(ValueError):
            StuckLineInjector(max_lines=0)


class TestDroppedCycleInjector:
    def test_all_cycles_dropped_at_rate_one(self):
        drivers = ScanDrivers(SHAPE)
        schedule = ScanSchedule.from_phi(_phi(0.5), SHAPE)
        injector = DroppedCycleInjector(rate=1.0, seed=0)
        with chaos(injector):
            cycles = _drive_all(drivers, schedule)
        assert cycles == []
        assert injector.trips == schedule.num_cycles

    def test_encoder_survives_dropped_cycles(self):
        encoder = FlexibleEncoder(
            ActiveMatrix(SHAPE), readout=ReadoutChain(noise_sigma_v=0.0)
        )
        phi = _phi(0.5)
        with chaos(DroppedCycleInjector(rate=1.0, seed=0)):
            output = encoder.scan_normalized(_smooth_frame(), phi)
        assert output.missing_reads == len(phi.indices)
        assert np.all(output.measurements == 0.0)


class TestAdcBitFlipInjector:
    def test_flips_codes(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0)
        values = np.full(100, 0.5)
        clean = chain.convert_normalized(values)
        injector = AdcBitFlipInjector(rate=1.0, seed=0, flip_fraction=0.2)
        with chaos(injector):
            flipped = chain.convert_normalized(values)
        assert injector.trips == 1
        changed = int((clean != flipped).sum())
        assert changed >= 1
        assert np.all((flipped >= 0.0) & (flipped <= 1.0))

    def test_codes_stay_on_grid(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=6)
        with chaos(AdcBitFlipInjector(rate=1.0, seed=1, flip_fraction=0.5)):
            codes = chain.convert_normalized(np.linspace(0, 1, 64))
        steps = codes * (2**6 - 1)
        assert np.allclose(steps, np.round(steps))

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            AdcBitFlipInjector(flip_fraction=0.0)


class TestSaturationBurstInjector:
    def test_rails_samples_high(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0)
        injector = SaturationBurstInjector(
            rate=1.0, seed=0, burst_fraction=0.3
        )
        with chaos(injector):
            codes = chain.convert_normalized(np.full(50, 0.4))
        assert (codes == 1.0).sum() >= 1

    def test_low_rail_variant(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0)
        injector = SaturationBurstInjector(
            rate=1.0, seed=0, burst_fraction=0.3, low_rail=True
        )
        with chaos(injector):
            codes = chain.convert_normalized(np.full(50, 0.4))
        assert (codes == 0.0).sum() >= 1

    def test_bursts_feed_saturation_counters(self):
        from repro import instrument

        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0)
        with instrument.profiled() as session:
            with chaos(
                SaturationBurstInjector(rate=1.0, seed=0, burst_fraction=0.5)
            ):
                chain.convert_normalized(np.full(20, 0.4))
        counters = session.report()["metrics"]["counters"]
        assert counters.get("readout.saturated_high", 0) >= 1


class TestGainDriftInjector:
    def test_gain_accumulates(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=14)
        injector = GainDriftInjector(rate=1.0, seed=0, drift_sigma=0.1)
        with chaos(injector):
            for _ in range(5):
                chain.convert_normalized(np.full(4, 0.5))
        assert injector.trips == 5
        assert injector.gain != 1.0

    def test_drift_changes_codes(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=14)
        clean = chain.convert_normalized(np.full(8, 0.5))
        injector = GainDriftInjector(rate=1.0, seed=3, drift_sigma=0.2)
        with chaos(injector):
            chain.convert_normalized(np.full(8, 0.5))  # take a drift step
            drifted = chain.convert_normalized(np.full(8, 0.5))
        assert not np.array_equal(clean, drifted)

    def test_reset_restores_unit_gain(self):
        injector = GainDriftInjector(rate=1.0, seed=0, drift_sigma=0.1)
        chain = ReadoutChain(noise_sigma_v=0.0)
        with chaos(injector):
            chain.convert_normalized(np.full(4, 0.5))
        assert injector.gain != 1.0
        injector.reset()
        assert injector.gain == 1.0

    def test_sigma_validated(self):
        with pytest.raises(ValueError):
            GainDriftInjector(drift_sigma=0.0)


class TestStuckPixelRowInjector:
    def test_row_stuck_at_value(self):
        array = ActiveMatrix(SHAPE)
        injector = StuckPixelRowInjector(
            rate=1.0, seed=0, stuck_value=0.0, max_rows=1
        )
        with chaos(injector):
            out = array.transduce(_smooth_frame())
        (row,) = injector.stuck_rows
        assert np.all(out[row, :] == 0.0)

    def test_stuck_rows_detected_as_stuck_lines(self):
        encoder = FlexibleEncoder(
            ActiveMatrix(SHAPE), readout=ReadoutChain(noise_sigma_v=0.0)
        )
        injector = StuckPixelRowInjector(rate=1.0, seed=0, max_rows=1)
        with chaos(injector):
            output = encoder.scan_normalized(_smooth_frame(), _phi(0.5))
        mask = detect_stuck_lines(output.codes)
        (row,) = injector.stuck_rows
        assert mask[row, :].all()

    def test_reset_clears_rows(self):
        array = ActiveMatrix(SHAPE)
        injector = StuckPixelRowInjector(rate=1.0, seed=0, max_rows=2)
        with chaos(injector):
            array.transduce(_smooth_frame())
        assert injector.stuck_rows
        injector.reset()
        assert injector.stuck_rows == ()

    def test_value_validated(self):
        with pytest.raises(ValueError):
            StuckPixelRowInjector(stuck_value=2.0)
        with pytest.raises(ValueError):
            StuckPixelRowInjector(max_rows=0)


class TestDeterminism:
    """The module-level determinism guarantee, audited per injector."""

    def _campaign(self, injector):
        """One fixed acquisition campaign; returns observable corruption."""
        encoder = FlexibleEncoder(
            ActiveMatrix(SHAPE), readout=ReadoutChain(noise_sigma_v=0.0)
        )
        results = []
        with chaos(injector):
            for k in range(4):
                output = encoder.scan_normalized(_smooth_frame(), _phi(seed=k))
                results.append(output.measurements.copy())
        return np.concatenate(results), injector.trips

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: StuckLineInjector(rate=0.5, seed=11),
            lambda: DroppedCycleInjector(rate=0.3, seed=11),
            lambda: AdcBitFlipInjector(rate=0.5, seed=11),
            lambda: SaturationBurstInjector(rate=0.5, seed=11),
            lambda: GainDriftInjector(rate=0.5, seed=11),
            lambda: StuckPixelRowInjector(rate=0.5, seed=11),
        ],
    )
    def test_same_seed_bit_identical(self, factory):
        a, trips_a = self._campaign(factory())
        b, trips_b = self._campaign(factory())
        assert trips_a == trips_b
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: StuckLineInjector(rate=0.5, seed=11),
            lambda: DroppedCycleInjector(rate=0.3, seed=11),
            lambda: AdcBitFlipInjector(rate=0.5, seed=11),
            lambda: SaturationBurstInjector(rate=0.5, seed=11),
            lambda: GainDriftInjector(rate=0.5, seed=11),
            lambda: StuckPixelRowInjector(rate=0.5, seed=11),
        ],
    )
    def test_reset_replays_campaign(self, factory):
        injector = factory()
        a, _ = self._campaign(injector)
        injector.reset()
        b, _ = self._campaign(injector)
        assert np.array_equal(a, b)


class TestArrayTaxonomy:
    def test_six_families(self):
        injectors = default_array_taxonomy(0.3, seed=2)
        assert len(injectors) == 6
        assert len({type(i) for i in injectors}) == 6
        for injector in injectors:
            assert injector.layer == "array"
            assert injector.rate == pytest.approx(0.05)

    def test_layer_dispatch_in_default_taxonomy(self):
        assert len(default_taxonomy(0.3, layer="array")) == 6
        assert len(default_taxonomy(0.3, layer="solver")) == 5
        assert len(default_taxonomy(0.3, layer="executor")) == 3
        everything = default_taxonomy(0.3, layer="all")
        assert len(everything) == 14
        assert {i.layer for i in everything} == {
            "solver", "array", "executor"
        }

    def test_layer_validated(self):
        with pytest.raises(ValueError):
            default_taxonomy(0.3, layer="hardware")

    def test_distinct_seeds(self):
        injectors = default_array_taxonomy(0.3, seed=2)
        assert len({i.seed for i in injectors}) == 6
