"""Unit tests for the fault-injection framework."""

import numpy as np
import pytest

from repro.core import sample_and_reconstruct, solve
from repro.core.dct import Dct2Basis
from repro.core.operators import SensingOperator
from repro.core.sensing import RowSamplingMatrix
from repro.core.solvers import solve_hooks
from repro.resilience import (
    BudgetExhaustionInjector,
    InjectedFault,
    MeasurementDropoutInjector,
    NanPoisonInjector,
    SolverDivergenceInjector,
    SolverExceptionInjector,
    chaos,
    default_taxonomy,
)


def _operator(n_side=8, fraction=0.6, seed=0):
    rng = np.random.default_rng(seed)
    n = n_side * n_side
    phi = RowSamplingMatrix.random(n, int(fraction * n), rng)
    return SensingOperator(phi, Dct2Basis((n_side, n_side)))


def _smooth_frame(shape=(8, 8)):
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    return 0.5 + 0.4 * np.sin(r / 4.0) * np.cos(c / 5.0)


class TestSolverExceptionInjector:
    def test_raises_at_rate_one(self):
        frame = _smooth_frame()
        with chaos(SolverExceptionInjector(rate=1.0, seed=0)) as (inj,):
            with pytest.raises(InjectedFault):
                sample_and_reconstruct(frame, 0.5, np.random.default_rng(0))
        assert inj.trips == 1

    def test_never_fires_at_rate_zero(self):
        frame = _smooth_frame()
        with chaos(SolverExceptionInjector(rate=0.0, seed=0)) as (inj,):
            sample_and_reconstruct(frame, 0.5, np.random.default_rng(0))
        assert inj.trips == 0

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            SolverExceptionInjector(rate=1.5)


class TestSolverDivergenceInjector:
    def test_poisons_result(self):
        op = _operator()
        b = np.full(op.shape[0], 0.1)
        with chaos(SolverDivergenceInjector(rate=1.0, seed=0)):
            result = solve("fista", op, b)
        assert not result.converged
        assert not np.isfinite(result.residual)
        assert not np.all(np.isfinite(result.coefficients))
        assert result.info["diverged"] and result.info["injected"]


class TestMeasurementDropoutInjector:
    def test_zeroes_expected_count(self):
        op = _operator()
        b = np.ones(op.shape[0])
        captured = {}

        class Capture:
            def before_solve(self, solver, operator, vec):
                captured["b"] = vec
                return vec

        injector = MeasurementDropoutInjector(
            rate=1.0, seed=0, dropout_fraction=0.25
        )
        with chaos(injector, Capture()):
            solve("fista", op, b)
        dropped = int((captured["b"] == 0.0).sum())
        assert dropped == round(0.25 * b.size)

    def test_original_vector_untouched(self):
        op = _operator()
        b = np.ones(op.shape[0])
        with chaos(MeasurementDropoutInjector(rate=1.0, seed=0)):
            solve("fista", op, b)
        assert np.all(b == 1.0)

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            MeasurementDropoutInjector(dropout_fraction=0.0)


class TestNanPoisonInjector:
    def test_poisons_measurements(self):
        op = _operator()
        b = np.ones(op.shape[0])
        injector = NanPoisonInjector(rate=1.0, seed=0, poison_fraction=0.1)
        with chaos(injector):
            result = solve("fista", op, b)
        # the divergence guard must catch the poisoned solve
        assert not result.converged
        assert injector.trips == 1

    def test_inf_variant(self):
        captured = {}

        class Capture:
            def before_solve(self, solver, operator, vec):
                captured["b"] = vec
                return vec

        op = _operator()
        injector = NanPoisonInjector(rate=1.0, seed=0, use_inf=True)
        with chaos(injector, Capture()):
            solve("fista", op, np.ones(op.shape[0]))
        assert np.isposinf(captured["b"]).any()


class TestBudgetExhaustionInjector:
    def test_marks_result_nonconverged(self):
        op = _operator()
        b = np.full(op.shape[0], 0.1)
        with chaos(BudgetExhaustionInjector(rate=1.0, seed=0)):
            result = solve("fista", op, b)
        assert not result.converged
        assert result.info["deadline"] and result.info["injected"]

    def test_latency_validated(self):
        with pytest.raises(ValueError):
            BudgetExhaustionInjector(latency_s=-1.0)

    def test_reset_clears_pending_trip(self):
        op = _operator()
        b = np.full(op.shape[0], 0.1)
        injector = BudgetExhaustionInjector(rate=1.0, seed=0)
        injector.before_solve("fista", op, b)  # arms a trip
        injector.reset()
        assert injector.trips == 0
        # The armed trip must not leak into the next campaign.
        result = injector.after_solve(
            "fista", solve("fista", op, b)
        )
        assert result.converged


class TestChaosContext:
    def test_hooks_removed_on_exit(self):
        baseline = len(solve_hooks())
        with chaos(SolverExceptionInjector(rate=0.0)):
            assert len(solve_hooks()) == baseline + 1
        assert len(solve_hooks()) == baseline

    def test_hooks_removed_on_error(self):
        baseline = len(solve_hooks())
        with pytest.raises(RuntimeError):
            with chaos(SolverExceptionInjector(rate=0.0)):
                raise RuntimeError("boom")
        assert len(solve_hooks()) == baseline

    def test_reset_restores_rng(self):
        injector = SolverExceptionInjector(rate=0.5, seed=42)
        first = [injector._fire() for _ in range(10)]
        trips = injector.trips
        injector.reset()
        assert injector.trips == 0
        assert [injector._fire() for _ in range(10)] == first
        assert injector.trips == trips


class TestDefaultTaxonomy:
    def test_five_families(self):
        injectors = default_taxonomy(0.25, seed=3)
        assert len(injectors) == 5
        assert len({type(i) for i in injectors}) == 5
        for injector in injectors:
            assert injector.rate == pytest.approx(0.05)

    def test_reproducible(self):
        frame = _smooth_frame()

        def trips(seed):
            injectors = default_taxonomy(0.6, seed=seed)
            with chaos(*injectors):
                for k in range(5):
                    try:
                        sample_and_reconstruct(
                            frame, 0.5, np.random.default_rng(k)
                        )
                    except InjectedFault:
                        pass
            return [i.trips for i in injectors]

        assert trips(7) == trips(7)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            default_taxonomy(1.5)
