"""Chaos integration: the ISSUE's headline acceptance scenario.

Under a 20 % combined fault rate across the full taxonomy, the
resilient runtime must deliver a valid frame for *every* input with
zero unhandled exceptions, keep median RMSE within 2x of the fault-free
baseline, and reproduce exactly under a fixed seed.
"""

import numpy as np

from repro import instrument
from repro.core.metrics import rmse
from repro.resilience import (
    ResiliencePolicy,
    ResilientDecoder,
    chaos,
    default_taxonomy,
)

FAULT_RATE = 0.2
SAMPLING_FRACTION = 0.55
NUM_FRAMES = 8
SEED = 0


def _frames(num=NUM_FRAMES, shape=(12, 12), seed=SEED):
    rng = np.random.default_rng(seed)
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    frames = []
    for k in range(num):
        phase = rng.uniform(0, np.pi)
        frames.append(
            0.5
            + 0.35 * np.sin(r / 3.0 + phase) * np.cos(c / 4.0 - phase)
        )
    return frames


def _run_chaos_decode(seed=SEED):
    """Decode all frames under the full taxonomy; returns outcomes."""
    decoder = ResilientDecoder(policy=ResiliencePolicy())
    outcomes = []
    with chaos(*default_taxonomy(FAULT_RATE, seed=seed)) as injectors:
        for index, frame in enumerate(_frames()):
            rng = np.random.default_rng([seed, index])
            outcomes.append(
                decoder.decode(frame, SAMPLING_FRACTION, rng)
            )
    return outcomes, injectors


class TestChaosIntegration:
    def test_every_frame_delivered_and_valid(self):
        outcomes, _ = _run_chaos_decode()
        assert len(outcomes) == NUM_FRAMES
        for outcome, frame in zip(outcomes, _frames()):
            assert outcome.frame is not None
            assert outcome.frame.shape == frame.shape
            assert np.all(np.isfinite(outcome.frame))
            assert outcome.status in {"ok", "degraded", "fallback"}

    def test_no_unhandled_exceptions(self):
        # the decode loop above must not raise; additionally assert the
        # injectors genuinely fired, so the run exercised real faults.
        outcomes, injectors = _run_chaos_decode()
        assert sum(i.trips for i in injectors) > 0
        assert all(o.delivered for o in outcomes)

    def test_median_rmse_within_2x_of_fault_free(self):
        frames = _frames()

        def median_rmse(outcomes):
            errors = [
                rmse(frame, outcome.frame)
                for frame, outcome in zip(frames, outcomes)
                # fallback frames are availability wins, not accuracy
                # claims; the RMSE bound applies to decoded frames
                if outcome.status != "fallback"
            ]
            return float(np.median(errors))

        baseline_decoder = ResilientDecoder()
        baseline = [
            baseline_decoder.decode(
                frame, SAMPLING_FRACTION, np.random.default_rng([SEED, i])
            )
            for i, frame in enumerate(frames)
        ]
        chaotic, _ = _run_chaos_decode()
        assert median_rmse(chaotic) <= 2.0 * median_rmse(baseline)

    def test_deterministic_under_fixed_seed(self):
        first, first_inj = _run_chaos_decode(seed=123)
        second, second_inj = _run_chaos_decode(seed=123)
        assert [i.trips for i in first_inj] == [i.trips for i in second_inj]
        for a, b in zip(first, second):
            assert a.status == b.status
            assert a.solver == b.solver
            assert len(a.attempts) == len(b.attempts)
            assert np.array_equal(a.frame, b.frame)
            assert a.faults_seen == b.faults_seen

    def test_resilience_events_visible_in_instrument_report(self):
        with instrument.profiled() as session:
            outcomes, _ = _run_chaos_decode()
        report = session.report()
        counters = report["metrics"]["counters"]
        assert counters.get("resilience.decodes") == NUM_FRAMES
        # every decode lands in exactly one status bucket
        assert (
            counters.get("resilience.decodes_ok", 0)
            + counters.get("resilience.decodes_degraded", 0)
            + counters.get("resilience.decodes_fallback", 0)
            == NUM_FRAMES
        )
        assert counters.get("resilience.attempts", 0) >= NUM_FRAMES
        # chaos trips and any retry/fallback machinery are all reported
        assert any(key.startswith("chaos.") for key in counters)
        degraded = [o for o in outcomes if o.status != "ok"]
        if degraded:
            assert counters["resilience.attempts"] > NUM_FRAMES
