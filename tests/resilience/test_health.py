"""Unit tests for reconstruction health validation and FrameGuard."""

import numpy as np
import pytest

from repro.core.solvers import SolverResult
from repro.resilience import (
    FrameGuard,
    residual_sane,
    validate_reconstruction,
)


def _result(residual=0.01, diverged=False, coefficients=None):
    info = {"diverged": True} if diverged else {}
    return SolverResult(
        coefficients=coefficients
        if coefficients is not None
        else np.zeros(16),
        iterations=10,
        converged=True,
        residual=residual,
        solver="fista",
        info=info,
    )


class TestValidateReconstruction:
    def test_healthy_frame_passes(self):
        report = validate_reconstruction(np.full((4, 4), 0.5))
        assert report.ok and report.failed == ()

    def test_nan_fails_finite(self):
        frame = np.full((4, 4), 0.5)
        frame[1, 2] = np.nan
        report = validate_reconstruction(frame)
        assert not report.ok
        assert "finite" in report.failed
        assert report.detail["finite"]["bad_pixels"] == 1

    def test_inf_fails_finite(self):
        frame = np.full((4, 4), 0.5)
        frame[0, 0] = np.inf
        assert "finite" in validate_reconstruction(frame).failed

    def test_shape_mismatch(self):
        report = validate_reconstruction(
            np.zeros((4, 4)), expected_shape=(8, 8)
        )
        assert "shape" in report.failed

    def test_range_violation(self):
        report = validate_reconstruction(
            np.full((4, 4), 7.0), value_range=(-0.5, 1.5)
        )
        assert "range" in report.failed
        assert report.detail["range"]["observed"] == (7.0, 7.0)

    def test_range_band_inclusive(self):
        frame = np.full((4, 4), 1.5)
        assert validate_reconstruction(frame, value_range=(-0.5, 1.5)).ok

    def test_residual_check_requires_both_inputs(self):
        # a huge residual is invisible without the measurements
        report = validate_reconstruction(
            np.full((4, 4), 0.5), solver_result=_result(residual=1e9)
        )
        assert report.ok

    def test_residual_failure(self):
        report = validate_reconstruction(
            np.full((4, 4), 0.5),
            solver_result=_result(residual=1e9),
            measurements=np.ones(10),
        )
        assert "residual" in report.failed

    def test_diverged_flag_fails_even_with_small_residual(self):
        report = validate_reconstruction(
            np.full((4, 4), 0.5),
            solver_result=_result(residual=0.001, diverged=True),
            measurements=np.ones(10),
        )
        assert "residual" in report.failed
        assert report.detail["residual"]["diverged"] is True


class TestResidualSane:
    def test_small_residual_ok(self):
        assert residual_sane(_result(residual=0.1), np.ones(10))

    def test_nan_residual_fails(self):
        assert not residual_sane(_result(residual=float("nan")), np.ones(10))

    def test_inf_residual_fails(self):
        assert not residual_sane(_result(residual=float("inf")), np.ones(10))

    def test_relative_to_measurement_norm(self):
        b = 100.0 * np.ones(10)
        assert residual_sane(_result(residual=50.0), b, factor=2.0)
        assert not residual_sane(_result(residual=1000.0), b, factor=2.0)

    def test_zero_measurements_zero_residual(self):
        assert residual_sane(_result(residual=0.0), np.zeros(10))


class TestFrameGuard:
    def test_fill_frame_before_any_success(self):
        guard = FrameGuard(fill_value=0.25)
        out = guard.fallback((3, 3))
        assert out.shape == (3, 3)
        assert np.all(out == 0.25)
        assert not guard.has_frame

    def test_holds_last_good_frame(self):
        guard = FrameGuard()
        frame = np.arange(9.0).reshape(3, 3)
        guard.update(frame)
        assert guard.has_frame
        out = guard.fallback((3, 3))
        assert np.array_equal(out, frame)

    def test_fallback_returns_copy(self):
        guard = FrameGuard()
        guard.update(np.zeros((2, 2)))
        out = guard.fallback((2, 2))
        out[0, 0] = 99.0
        assert guard.fallback((2, 2))[0, 0] == 0.0

    def test_update_is_defensive_copy(self):
        guard = FrameGuard()
        frame = np.zeros((2, 2))
        guard.update(frame)
        frame[0, 0] = 99.0
        assert guard.fallback((2, 2))[0, 0] == 0.0

    def test_shape_mismatch_serves_fill(self):
        guard = FrameGuard(fill_value=0.5)
        guard.update(np.zeros((2, 2)))
        out = guard.fallback((4, 4))
        assert out.shape == (4, 4)
        assert np.all(out == 0.5)
