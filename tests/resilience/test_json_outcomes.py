"""DecodeOutcome / policy snapshots must always survive json.dumps.

Solver info dicts leak numpy scalars (iteration counts, residuals) and
adaptive tuning can plant numpy ints in budgets; the structured-outcome
serialisers coerce everything through ``repro.instrument.json_safe`` so
downstream tooling can archive outcomes without type errors.
"""

import json

import numpy as np

from repro.resilience import ResiliencePolicy
from repro.resilience.adaptive import AdaptationEvent
from repro.resilience.policies import SolverBudget
from repro.resilience.runtime import (
    OUTCOME_SCHEMA,
    AttemptRecord,
    DecodeOutcome,
)


class TestOutcomeSchemaStability:
    """The ``repro.outcome/v1`` wire schema is pinned here.

    Downstream consumers (the serve-layer response stream, archived
    chaos reports) key on these exact fields; changing them requires a
    schema-tag bump, and this test is the tripwire.
    """

    def test_schema_tag(self):
        assert OUTCOME_SCHEMA == "repro.outcome/v1"

    def test_round_trip_preserves_the_exact_key_set(self):
        outcome = DecodeOutcome(
            frame=np.zeros((4, 4)),
            status="ok",
            solver="fista",
            attempts=[
                AttemptRecord(round=0, solver="fista", status="success")
            ],
        )
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert sorted(payload) == [
            "adaptation_events",
            "attempts",
            "faults_seen",
            "health",
            "policy_snapshot",
            "schema",
            "solver",
            "status",
        ]
        assert payload["schema"] == OUTCOME_SCHEMA
        assert sorted(payload["attempts"][0]) == [
            "duration_s",
            "error",
            "iterations",
            "round",
            "solver",
            "status",
        ]

    def test_real_outcome_is_schema_tagged(self):
        from repro.resilience import ResilientDecoder

        decoder = ResilientDecoder(policy=ResiliencePolicy())
        frame = np.clip(
            np.random.default_rng(0).normal(0.5, 0.2, size=(8, 8)), 0.0, 1.0
        )
        outcome = decoder.decode(frame, 0.5, np.random.default_rng(1))
        round_tripped = json.loads(json.dumps(outcome.to_dict()))
        assert round_tripped["schema"] == OUTCOME_SCHEMA
        assert round_tripped["status"] == outcome.status


class TestDecodeOutcomeJson:
    def test_numpy_typed_attempts_dump(self):
        outcome = DecodeOutcome(
            frame=np.zeros((4, 4)),
            status="degraded",
            solver="fista",
            attempts=[
                AttemptRecord(
                    round=0,
                    solver="fista",
                    status="retry",
                    iterations=np.int64(200),
                    duration_s=np.float64(0.01),
                )
            ],
            faults_seen=("diverged",),
        )
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert payload["attempts"][0]["iterations"] == 200
        assert payload["attempts"][0]["duration_s"] == 0.01

    def test_numpy_typed_policy_snapshot_dumps(self):
        outcome = DecodeOutcome(
            frame=np.zeros((4, 4)),
            status="ok",
            solver="fista",
            policy_snapshot={
                "budget": {"max_iterations": np.int64(400)},
                "open_rate": np.float32(0.25),
            },
        )
        payload = json.loads(json.dumps(outcome.to_dict()))
        assert payload["policy_snapshot"]["budget"]["max_iterations"] == 400

    def test_real_decode_outcome_dumps(self):
        from repro.resilience import ResilientDecoder

        decoder = ResilientDecoder(policy=ResiliencePolicy())
        frame = np.clip(
            np.random.default_rng(0).normal(0.5, 0.2, size=(8, 8)), 0.0, 1.0
        )
        outcome = decoder.decode(frame, 0.5, np.random.default_rng(1))
        json.dumps(outcome.to_dict())


class TestPolicySnapshotJson:
    def test_numpy_tuned_budget_dumps(self):
        policy = ResiliencePolicy(
            budget=SolverBudget(
                max_iterations=np.int64(250), time_limit_s=np.float64(0.5)
            ),
            budgets={"omp": SolverBudget(max_iterations=np.int32(64))},
        )
        payload = json.loads(json.dumps(policy.snapshot()))
        assert payload["budget"]["max_iterations"] == 250
        assert payload["budgets"]["omp"]["max_iterations"] == 64


class TestAdaptationEventJson:
    def test_numpy_typed_event_dumps(self):
        event = AdaptationEvent(
            frame_index=np.int64(3),
            action="escalate",
            detail="level up",
            level=np.int64(1),
        )
        payload = json.loads(json.dumps(event.to_dict()))
        assert payload == {
            "frame_index": 3,
            "action": "escalate",
            "detail": "level up",
            "level": 1,
        }
