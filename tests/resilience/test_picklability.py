"""Pickle round-trip regression tests for the process-pool payloads.

The process executor ships frozen :class:`DecodeContext` plans and
:class:`ResiliencePolicy` objects across worker boundaries; these tests
pin down that they survive pickling (``DecodeContext`` wraps its
``solver_options`` in a ``MappingProxyType``, which needs custom
``__getstate__``/``__setstate__``) and that a round-tripped plan decodes
bit-identically to the original.
"""

import pickle

import numpy as np

from repro.core.engine import DecodeContext, get_engine
from repro.resilience import ResiliencePolicy
from repro.resilience.policies import RetryPolicy, SolverBudget


def _rich_plan():
    mask = np.zeros((10, 10), dtype=bool)
    mask[0, :3] = True
    weights = np.ones((10, 10))
    weights[5:, :] = 2.0
    return DecodeContext(
        shape=(10, 10),
        sampling_fraction=0.5,
        solver="fista",
        solver_options={"max_iterations": 150, "tolerance": 1e-6},
        noise_sigma=0.01,
        exclude_mask=mask,
        weights=weights,
    )


class TestDecodeContextPickle:
    def test_round_trip_preserves_fields(self):
        plan = _rich_plan()
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.shape == plan.shape
        assert clone.sampling_fraction == plan.sampling_fraction
        assert clone.solver == plan.solver
        assert dict(clone.solver_options) == dict(plan.solver_options)
        np.testing.assert_array_equal(clone.exclude_mask, plan.exclude_mask)
        np.testing.assert_array_equal(clone.weights, plan.weights)

    def test_round_trip_keeps_arrays_frozen(self):
        clone = pickle.loads(pickle.dumps(_rich_plan()))
        assert not clone.exclude_mask.flags.writeable
        assert not clone.weights.flags.writeable

    def test_round_trip_solver_options_read_only(self):
        clone = pickle.loads(pickle.dumps(_rich_plan()))
        try:
            clone.solver_options["max_iterations"] = 1
        except TypeError:
            pass
        else:  # pragma: no cover - regression guard
            raise AssertionError("solver_options became mutable after pickle")

    def test_pickled_plan_decodes_bit_identically(self):
        plan = _rich_plan()
        clone = pickle.loads(pickle.dumps(plan))
        rng = np.random.default_rng(3)
        frame = np.clip(rng.normal(0.5, 0.2, size=(10, 10)), 0.0, 1.0)
        original = get_engine().decode(frame, plan, np.random.default_rng(7))
        replayed = get_engine().decode(frame, clone, np.random.default_rng(7))
        np.testing.assert_array_equal(replayed, original)


class TestResiliencePolicyPickle:
    def test_default_policy_round_trips(self):
        policy = ResiliencePolicy()
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.fallback_chain == policy.fallback_chain
        assert clone.snapshot() == policy.snapshot()

    def test_tuned_policy_round_trips(self):
        policy = ResiliencePolicy(
            fallback_chain=("fista", "omp"),
            retry=RetryPolicy(max_rounds=3),
            budget=SolverBudget(max_iterations=123, time_limit_s=0.5),
            budgets={"omp": SolverBudget(max_iterations=40)},
            accept_nonconverged=False,
        )
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.snapshot() == policy.snapshot()
        assert clone.budget_for("omp").max_iterations == 40
