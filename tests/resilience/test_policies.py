"""Unit tests for budgets, retry policy and the circuit breaker."""

import pytest

from repro.resilience import (
    DEFAULT_FALLBACK_CHAIN,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    SolverBudget,
)


class TestSolverBudget:
    def test_filters_unsupported_kwargs(self):
        budget = SolverBudget(max_iterations=50, time_limit_s=1.0)
        assert budget.solver_options("fista") == {
            "max_iterations": 50,
            "time_limit_s": 1.0,
        }
        assert budget.solver_options("omp") == {"time_limit_s": 1.0}
        assert budget.solver_options("bp") == {}

    def test_none_leaves_defaults(self):
        assert SolverBudget().solver_options("fista") == {}

    def test_unknown_solver_gets_both(self):
        budget = SolverBudget(max_iterations=10, time_limit_s=2.0)
        assert budget.solver_options("future_solver") == {
            "max_iterations": 10,
            "time_limit_s": 2.0,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            SolverBudget(max_iterations=0)
        with pytest.raises(ValueError):
            SolverBudget(time_limit_s=0.0)


class TestRetryPolicy:
    def test_default_bounded(self):
        assert RetryPolicy().max_rounds == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_rounds=0)


class TestCircuitBreaker:
    def test_closed_by_default(self):
        breaker = CircuitBreaker()
        assert breaker.allow("fista")
        assert not breaker.is_open("fista")

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5)
        for _ in range(3):
            breaker.record_failure("fista")
        assert breaker.is_open("fista")
        assert not breaker.allow("fista")

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure("fista")
        breaker.record_failure("fista")
        breaker.record_success("fista")
        breaker.record_failure("fista")
        breaker.record_failure("fista")
        assert not breaker.is_open("fista")

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=3)
        breaker.record_failure("fista")
        assert breaker.is_open("fista")
        denials = [breaker.allow("fista") for _ in range(3)]
        assert denials == [False, False, False]
        assert breaker.allow("fista")  # the half-open probe

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure("fista")
        assert not breaker.allow("fista")
        assert breaker.allow("fista")  # probe
        breaker.record_success("fista")
        assert not breaker.is_open("fista")
        assert breaker.allow("fista")

    def test_per_solver_isolation(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("fista")
        assert breaker.is_open("fista")
        assert breaker.allow("omp")

    def test_reset(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("fista")
        breaker.reset()
        assert not breaker.is_open("fista")
        assert breaker.allow("fista")

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)

    def test_failed_probe_restarts_a_full_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure("fista")
        assert [breaker.allow("fista") for _ in range(3)] == [
            False, False, True,  # cooldown, then the probe
        ]
        breaker.record_failure("fista")  # probe failed: re-open
        assert [breaker.allow("fista") for _ in range(3)] == [
            False, False, True,  # a fresh, full cooldown
        ]


class TestCircuitBreakerConcurrency:
    """The breaker is shared by concurrent decode-service callers.

    These regressions pin the thread-safety contract: state transitions
    are serialised, exactly one caller wins each half-open probe, and
    racing success/failure records never corrupt the counters.
    """

    def _hammer(self, fn, threads=8, rounds=50):
        import threading

        barrier = threading.Barrier(threads)
        results = [None] * threads

        def body(slot):
            barrier.wait()
            results[slot] = [fn() for _ in range(rounds)]

        workers = [
            threading.Thread(target=body, args=(slot,))
            for slot in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        return results

    def test_exactly_one_probe_per_cooldown_under_contention(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5)
        breaker.record_failure("fista")
        results = self._hammer(
            lambda: breaker.allow("fista"), threads=8, rounds=50
        )
        admitted = sum(r.count(True) for r in results)
        # 400 calls while open: one probe per elapsed cooldown window,
        # never more (the failed-probe counter resets atomically).
        assert admitted == 400 // (breaker.cooldown + 1)

    def test_racing_transitions_leave_a_consistent_machine(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=4)

        def churn():
            breaker.record_failure("fista")
            breaker.allow("fista")
            breaker.record_success("fista")
            return breaker.is_open("fista")

        self._hammer(churn, threads=8, rounds=25)
        # Whatever interleaving happened, the machine must still work:
        # a clean failure streak opens it, a success closes it.
        breaker.reset()
        for _ in range(3):
            breaker.record_failure("fista")
        assert breaker.is_open("fista")
        breaker.record_success("fista")
        assert not breaker.is_open("fista")
        assert breaker.allow("fista")

    def test_probe_grant_then_concurrent_success_close(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure("fista")
        assert not breaker.allow("fista")
        assert breaker.allow("fista")  # the probe slot
        # Concurrent successes (probe result + healthy sibling solves)
        # must close the breaker exactly once, without deadlock.
        self._hammer(
            lambda: breaker.record_success("fista"), threads=4, rounds=10
        )
        assert not breaker.is_open("fista")
        assert breaker.allow("fista")


class TestResiliencePolicy:
    def test_default_chain(self):
        policy = ResiliencePolicy()
        assert policy.fallback_chain == DEFAULT_FALLBACK_CHAIN
        assert policy.fallback_chain[0] == "fista"

    def test_budget_override_per_solver(self):
        tight = SolverBudget(max_iterations=5)
        policy = ResiliencePolicy(
            budget=SolverBudget(max_iterations=100),
            budgets={"bp_dr": tight},
        )
        assert policy.budget_for("bp_dr") is tight
        assert policy.budget_for("fista").max_iterations == 100

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(fallback_chain=())
