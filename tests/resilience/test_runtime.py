"""Unit tests for the supervised decode runtime."""

import numpy as np
import pytest

from repro.core import OracleExclusionStrategy
from repro.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilientDecoder,
    ResilientStrategy,
    RetryPolicy,
    SolverBudget,
    SolverExceptionInjector,
    chaos,
    resilient_sample_and_reconstruct,
)


def _smooth_frame(shape=(10, 10)):
    r, c = np.mgrid[0 : shape[0], 0 : shape[1]]
    return 0.5 + 0.4 * np.sin(r / 4.0) * np.cos(c / 5.0)


class TestCleanPath:
    def test_first_solver_first_try(self):
        decoder = ResilientDecoder()
        outcome = decoder.decode(
            _smooth_frame(), 0.6, np.random.default_rng(0)
        )
        assert outcome.status == "ok"
        assert outcome.solver == "fista"
        assert len(outcome.attempts) == 1
        assert outcome.attempts[0].status == "ok"
        assert outcome.faults_seen == ()
        assert outcome.health is not None and outcome.health.ok
        assert outcome.delivered

    def test_frame_quality_matches_plain_decode(self):
        from repro.core import sample_and_reconstruct

        frame = _smooth_frame()
        plain = sample_and_reconstruct(frame, 0.6, np.random.default_rng(1))
        supervised = ResilientDecoder().decode(
            frame, 0.6, np.random.default_rng(1)
        )
        assert np.allclose(plain, supervised.frame)

    def test_to_dict_schema(self):
        outcome = ResilientDecoder().decode(
            _smooth_frame(), 0.6, np.random.default_rng(2)
        )
        as_dict = outcome.to_dict()
        assert as_dict["status"] == "ok"
        assert as_dict["attempts"][0]["solver"] == "fista"
        assert as_dict["health"]["ok"] is True


class TestFallbackChain:
    def test_falls_back_when_primary_raises(self):
        # rate=1.0 kills every fista call; the chain must move on.
        policy = ResiliencePolicy(breaker=None)

        class KillFista:
            def before_solve(self, solver, operator, b):
                if solver == "fista":
                    raise RuntimeError("primary down")
                return b

        decoder = ResilientDecoder(policy=policy)
        from repro.core.solvers import register_solve_hook, unregister_solve_hook

        hook = KillFista()
        register_solve_hook(hook)
        try:
            outcome = decoder.decode(
                _smooth_frame(), 0.6, np.random.default_rng(3)
            )
        finally:
            unregister_solve_hook(hook)
        assert outcome.status == "degraded"
        assert outcome.solver == "bp_dr"
        assert outcome.attempts[0].status == "error"
        assert "RuntimeError" in outcome.faults_seen

    def test_all_solvers_dead_yields_fallback_frame(self):
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_rounds=2), breaker=None
        )
        decoder = ResilientDecoder(policy=policy)
        frame = _smooth_frame()
        with chaos(SolverExceptionInjector(rate=1.0, seed=0)):
            outcome = decoder.decode(frame, 0.6, np.random.default_rng(4))
        assert outcome.status == "fallback"
        assert outcome.solver is None
        assert outcome.frame.shape == frame.shape
        assert np.all(np.isfinite(outcome.frame))
        # 2 rounds x 3 solvers, every one an error
        assert len(outcome.attempts) == 6
        assert all(a.status == "error" for a in outcome.attempts)

    def test_fallback_serves_last_good_frame(self):
        decoder = ResilientDecoder(policy=ResiliencePolicy(breaker=None))
        frame = _smooth_frame()
        good = decoder.decode(frame, 0.6, np.random.default_rng(5))
        assert good.status == "ok"
        with chaos(SolverExceptionInjector(rate=1.0, seed=0)):
            held = decoder.decode(frame, 0.6, np.random.default_rng(6))
        assert held.status == "fallback"
        assert np.array_equal(held.frame, good.frame)


class TestBreakerIntegration:
    def test_breaker_skips_open_solver(self):
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_rounds=1),
            breaker=CircuitBreaker(failure_threshold=1, cooldown=100),
        )
        decoder = ResilientDecoder(policy=policy)
        frame = _smooth_frame()

        class KillFista:
            def before_solve(self, solver, operator, b):
                if solver == "fista":
                    raise RuntimeError("primary down")
                return b

        from repro.core.solvers import register_solve_hook, unregister_solve_hook

        hook = KillFista()
        register_solve_hook(hook)
        try:
            first = decoder.decode(frame, 0.6, np.random.default_rng(7))
            second = decoder.decode(frame, 0.6, np.random.default_rng(8))
        finally:
            unregister_solve_hook(hook)
        assert first.attempts[0].status == "error"
        # the breaker opened on fista, so the second decode skips it
        assert second.attempts[0].status == "breaker_open"
        assert second.solver == "bp_dr"


class TestBudgets:
    def test_budget_options_forwarded(self):
        # max_iterations is FISTA's per-stage cap; pinning one
        # continuation stage via caller options makes the cap global
        # and exercises the budget/options merge at the same time.
        policy = ResiliencePolicy(
            budget=SolverBudget(max_iterations=7), breaker=None
        )
        decoder = ResilientDecoder(policy=policy)
        outcome = decoder.decode(
            _smooth_frame(),
            0.6,
            np.random.default_rng(9),
            solver_options={"continuation_stages": 1},
        )
        delivered = next(a for a in outcome.attempts if a.status == "ok")
        assert delivered.iterations <= 7


class TestInputValidation:
    def test_nan_frame_rejected_up_front(self):
        decoder = ResilientDecoder()
        with pytest.raises(ValueError):
            decoder.decode(
                np.full((4, 4), np.nan), 0.5, np.random.default_rng(0)
            )

    def test_bad_fraction_rejected(self):
        decoder = ResilientDecoder()
        with pytest.raises(ValueError):
            decoder.decode(_smooth_frame(), 0.0, np.random.default_rng(0))

    def test_starving_exclusion_mask_rejected(self):
        decoder = ResilientDecoder()
        frame = _smooth_frame((4, 4))
        with pytest.raises(ValueError):
            decoder.decode(
                frame,
                0.5,
                np.random.default_rng(0),
                exclude_mask=np.ones((4, 4), dtype=bool),
            )

    def test_mask_shape_rejected(self):
        decoder = ResilientDecoder()
        with pytest.raises(ValueError):
            decoder.decode(
                _smooth_frame(),
                0.5,
                np.random.default_rng(0),
                exclude_mask=np.zeros((2, 2), dtype=bool),
            )


class TestConvenienceFunction:
    def test_one_shot(self):
        outcome = resilient_sample_and_reconstruct(
            _smooth_frame(), 0.6, np.random.default_rng(10)
        )
        assert outcome.status == "ok"


class TestResilientStrategy:
    def test_wraps_core_strategy(self):
        strategy = ResilientStrategy(
            OracleExclusionStrategy(sampling_fraction=0.6)
        )
        frame = _smooth_frame()
        mask = np.zeros(frame.shape, dtype=bool)
        out = strategy.reconstruct(
            frame, np.random.default_rng(11), error_mask=mask
        )
        assert out.shape == frame.shape
        assert strategy.last_outcome is not None
        assert strategy.last_outcome.status == "ok"

    def test_restores_inner_solver_settings(self):
        inner = OracleExclusionStrategy(sampling_fraction=0.6, solver="fista")
        strategy = ResilientStrategy(inner)
        frame = _smooth_frame()
        strategy.reconstruct(
            frame,
            np.random.default_rng(12),
            error_mask=np.zeros(frame.shape, dtype=bool),
        )
        assert inner.solver == "fista"

    def test_chaos_still_delivers(self):
        strategy = ResilientStrategy(
            OracleExclusionStrategy(sampling_fraction=0.6),
            policy=ResiliencePolicy(breaker=None),
        )
        frame = _smooth_frame()
        with chaos(SolverExceptionInjector(rate=1.0, seed=0)):
            out = strategy.reconstruct(
                frame,
                np.random.default_rng(13),
                error_mask=np.zeros(frame.shape, dtype=bool),
            )
        assert out.shape == frame.shape
        assert strategy.last_outcome.status == "fallback"

    def test_rejects_non_strategy(self):
        with pytest.raises(TypeError):
            ResilientStrategy(object())

    def test_pipeline_attaches_outcome(self):
        from repro.core.pipeline import evaluate_frame

        strategy = ResilientStrategy(
            OracleExclusionStrategy(sampling_fraction=0.6)
        )
        outcome = evaluate_frame(
            _smooth_frame(), 0.05, strategy, np.random.default_rng(14)
        )
        assert outcome.decode_outcome is not None
        assert outcome.decode_outcome.status in {"ok", "degraded"}
