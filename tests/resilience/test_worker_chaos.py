"""Tests for the executor-layer chaos family (repro.resilience.worker_chaos)."""

import time

import pytest

from repro.core.executor import (
    SerialExecutor,
    SupervisedExecutor,
    ThreadExecutor,
    WorkerCrash,
    collect_values,
)
from repro.resilience import (
    WorkerCrashInjector,
    WorkerHangInjector,
    WorkerSlowStartInjector,
    chaos,
    default_taxonomy,
    default_worker_taxonomy,
)


def _double(x):
    return x * 2


class TestInjectors:
    def test_crash_injector_surfaces_as_worker_crash_error(self):
        injector = WorkerCrashInjector(rate=1.0, seed=0)
        with chaos(injector):
            results = SerialExecutor().map_tasks(_double, [1])
        assert not results[0].ok
        assert results[0].error.startswith("WorkerCrash")
        assert "injected worker crash" in results[0].error
        assert injector.trips == 1

    def test_crash_injector_raises_outside_executor(self):
        injector = WorkerCrashInjector(rate=1.0, seed=0)
        with pytest.raises(WorkerCrash, match="injected worker crash"):
            injector.before_task("manual", 0)

    def test_crash_injector_rate_zero_never_fires(self):
        injector = WorkerCrashInjector(rate=0.0, seed=0)
        with chaos(injector):
            values = collect_values(
                SerialExecutor().map_tasks(_double, list(range(20)))
            )
        assert values == [x * 2 for x in range(20)]
        assert injector.trips == 0

    def test_hang_injector_stalls_the_task(self):
        injector = WorkerHangInjector(rate=1.0, seed=0, hang_s=0.05)
        start = time.monotonic()
        with chaos(injector):
            values = collect_values(SerialExecutor().map_tasks(_double, [3]))
        assert values == [6]
        assert time.monotonic() - start >= 0.04
        assert injector.trips == 1

    def test_slow_start_fires_once_per_worker(self):
        injector = WorkerSlowStartInjector(rate=1.0, seed=0, delay_s=0.0)
        with chaos(injector):
            SerialExecutor().map_tasks(_double, list(range(10)))
        # Serial backend = one thread = one cold start.
        assert injector.trips == 1
        injector.reset()
        assert injector.trips == 0
        with chaos(injector):
            SerialExecutor().map_tasks(_double, [1])
        assert injector.trips == 1

    def test_seeded_runs_trip_identically(self):
        trips = []
        for _ in range(2):
            injector = WorkerCrashInjector(rate=0.5, seed=42)
            with chaos(injector):
                results = SerialExecutor().map_tasks(
                    _double, list(range(12))
                )
            trips.append(tuple(r.ok for r in results))
        assert trips[0] == trips[1]

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="hang_s"):
            WorkerHangInjector(hang_s=-1)
        with pytest.raises(ValueError, match="delay_s"):
            WorkerSlowStartInjector(delay_s=-1)
        with pytest.raises(ValueError, match="rate"):
            WorkerCrashInjector(rate=1.5)

    def test_hooks_detach_on_exit(self):
        injector = WorkerCrashInjector(rate=1.0, seed=0)
        with chaos(injector):
            pass
        results = SerialExecutor().map_tasks(_double, [1])
        assert results[0].ok


class TestSupervisedUnderChaos:
    def test_supervision_absorbs_injected_crashes(self):
        executor = SupervisedExecutor(SerialExecutor(), max_retries=4)
        injector = WorkerCrashInjector(rate=0.4, seed=1)
        with chaos(injector):
            values = collect_values(
                executor.map_tasks(_double, list(range(10)))
            )
        assert values == [x * 2 for x in range(10)]
        assert injector.trips > 0
        assert len(executor.pop_losses()) == injector.trips

    def test_supervision_times_out_injected_hangs(self):
        executor = SupervisedExecutor(
            ThreadExecutor(2), timeout_s=0.05, heartbeat_s=0.01, max_retries=0
        )
        injector = WorkerHangInjector(rate=1.0, seed=0, hang_s=0.3)
        with chaos(injector):
            results = executor.map_tasks(_double, [1])
        assert not results[0].ok
        assert results[0].error.startswith("WorkerTimeout")
        assert [loss.kind for loss in executor.pop_losses()] == ["timeout"]
        executor.close()


class TestTaxonomy:
    def test_worker_taxonomy_families_and_seeds(self):
        taxonomy = default_worker_taxonomy(0.3, seed=10)
        assert [type(i).__name__ for i in taxonomy] == [
            "WorkerCrashInjector",
            "WorkerHangInjector",
            "WorkerSlowStartInjector",
        ]
        assert [i.seed for i in taxonomy] == [10, 11, 12]
        assert all(i.rate == pytest.approx(0.1) for i in taxonomy)
        assert all(i.layer == "executor" for i in taxonomy)

    def test_default_taxonomy_layer_executor(self):
        taxonomy = default_taxonomy(0.3, seed=5, layer="executor")
        assert len(taxonomy) == 3
        assert all(i.layer == "executor" for i in taxonomy)

    def test_default_taxonomy_layer_all_includes_workers(self):
        taxonomy = default_taxonomy(0.3, seed=0, layer="all")
        layers = {i.layer for i in taxonomy}
        assert layers == {"solver", "array", "executor"}
        worker_seeds = [i.seed for i in taxonomy if i.layer == "executor"]
        assert worker_seeds == [11, 12, 13]

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="fault_rate"):
            default_worker_taxonomy(1.5)
