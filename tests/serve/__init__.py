"""Tests for the multi-tenant decode service (repro.serve)."""
