"""Tests for token-bucket admission control (repro.serve.admission)."""

import pytest

from repro.serve import Quota, TokenBucket, VirtualClock
from repro.serve.admission import REJECTION_REASONS, AdmissionController


class TestQuota:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            Quota(rate=-1.0, burst=4)
        with pytest.raises(ValueError, match="burst"):
            Quota(rate=1.0, burst=0)

    def test_zero_rate_allowed(self):
        assert Quota(rate=0.0, burst=1).rate == 0.0


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = VirtualClock()
        bucket = TokenBucket(Quota(rate=1.0, burst=3), clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_is_a_pure_function_of_clock_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(Quota(rate=2.0, burst=4), clock)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(1.0)  # 2 tokens accrue
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(Quota(rate=10.0, burst=2), clock)
        clock.advance(100.0)
        assert bucket.peek() == pytest.approx(2.0)

    def test_zero_rate_never_refills(self):
        clock = VirtualClock()
        bucket = TokenBucket(Quota(rate=0.0, burst=1), clock)
        assert bucket.try_acquire()
        clock.advance(1e6)
        assert not bucket.try_acquire()

    def test_invalid_amount(self):
        bucket = TokenBucket(Quota(rate=1.0, burst=1), VirtualClock())
        with pytest.raises(ValueError, match="amount"):
            bucket.try_acquire(0)

    def test_deterministic_replay(self):
        def trace():
            clock = VirtualClock()
            bucket = TokenBucket(Quota(rate=1.5, burst=2), clock)
            admitted = []
            for step in range(20):
                clock.advance(0.3)
                admitted.append(bucket.try_acquire())
            return admitted

        assert trace() == trace()


class TestAdmissionController:
    def _controller(self):
        clock = VirtualClock()
        controller = AdmissionController(clock)
        controller.register_tenant("lab", Quota(rate=0.0, burst=2))
        controller.register_stream("lab/s0", Quota(rate=0.0, burst=1))
        return controller, clock

    def test_unregistered_is_unlimited(self):
        controller = AdmissionController(VirtualClock())
        assert all(
            controller.admit("ghost", "ghost/s") is None for _ in range(100)
        )

    def test_tenant_gate_checked_first(self):
        controller, _ = self._controller()
        assert controller.admit("lab", "lab/s0") is None
        # Stream bucket (burst 1) is now empty but the tenant bucket
        # still has a token: the stream gate rejects (and refunds).
        assert controller.admit("lab", "lab/s0") == "stream_rate_exceeded"
        # Drain the tenant budget through an unlimited sibling stream;
        # the tenant gate then rejects before the stream gate is asked.
        assert controller.admit("lab", "lab/other") is None
        assert controller.admit("lab", "lab/s0") == "tenant_rate_exceeded"

    def test_stream_rejection_refunds_tenant_token(self):
        controller, _ = self._controller()
        assert controller.admit("lab", "lab/s0") is None
        # Two stream-limited rejections must not drain the tenant
        # budget: a sibling stream can still spend the remaining token.
        assert controller.admit("lab", "lab/s0") == "stream_rate_exceeded"
        assert controller.admit("lab", "lab/s0") == "stream_rate_exceeded"
        assert controller.admit("lab", "lab/other") is None

    def test_reasons_come_from_the_taxonomy(self):
        controller, _ = self._controller()
        seen = set()
        for _ in range(5):
            reason = controller.admit("lab", "lab/s0")
            if reason is not None:
                seen.add(reason)
        assert seen <= REJECTION_REASONS

    def test_reregistration_with_none_removes_quota(self):
        controller, _ = self._controller()
        controller.register_stream("lab/s0", None)
        controller.register_tenant("lab", None)
        assert all(
            controller.admit("lab", "lab/s0") is None for _ in range(10)
        )
