"""Tests for the asyncio front end (repro.serve.async_service)."""

import asyncio

import numpy as np
import pytest

from repro.core.engine import DecodeContext
from repro.serve import (
    AsyncDecodeService,
    DecodeService,
    StreamConfig,
    TenantConfig,
)


def _service(**kwargs):
    service = DecodeService(cycle_budget=4, **kwargs)
    service.register_tenant(TenantConfig("lab"))
    service.register_stream(
        StreamConfig(
            name="lab/s0",
            tenant="lab",
            plan=DecodeContext(
                shape=(6, 6),
                sampling_fraction=0.6,
                solver_options={"max_iterations": 40},
            ),
            queue_limit=16,
        )
    )
    return service


def _frame(seed=0):
    return np.random.default_rng(seed).random((6, 6))


class TestAsyncDecodeService:
    def test_decode_roundtrip(self):
        async def main():
            async with AsyncDecodeService(_service()) as srv:
                return await srv.decode("lab/s0", _frame())

        ticket, verdict = asyncio.run(main())
        assert ticket.admitted
        assert verdict.status == "decoded"
        assert verdict.seq == ticket.seq

    def test_concurrent_submitters_each_get_their_verdict(self):
        async def main():
            async with AsyncDecodeService(_service()) as srv:
                return await asyncio.gather(
                    *(srv.decode("lab/s0", _frame(i)) for i in range(6))
                )

        results = asyncio.run(main())
        assert len(results) == 6
        for ticket, verdict in results:
            assert ticket.admitted
            assert verdict is not None
            assert verdict.seq == ticket.seq
            assert verdict.status == "decoded"

    def test_rejection_is_the_terminal_answer(self):
        async def main():
            async with AsyncDecodeService(_service()) as srv:
                return await srv.decode(
                    "lab/s0", np.zeros((3, 3))  # invalid shape
                )

        ticket, verdict = asyncio.run(main())
        assert ticket.status == "rejected"
        assert ticket.reason == "invalid_frame"
        assert verdict is None

    def test_aclose_resolves_every_pending_future(self):
        async def main():
            srv = AsyncDecodeService(_service())
            await srv.start()
            # Submit without awaiting the verdicts, then close: the
            # drain-on-close contract must still answer every frame.
            futures = []
            for i in range(4):
                ticket, future = await srv.submit("lab/s0", _frame(i))
                assert ticket.admitted
                futures.append(future)
            await srv.aclose()
            return [f.result() for f in futures]

        verdicts = asyncio.run(main())
        assert [v.status for v in verdicts] == ["decoded"] * 4

    def test_submit_before_start_is_an_error(self):
        async def main():
            srv = AsyncDecodeService(_service())
            with pytest.raises(RuntimeError, match="not started"):
                await srv.submit("lab/s0", _frame())

        asyncio.run(main())

    def test_wrapped_service_must_not_have_a_verdict_callback(self):
        service = _service()
        service.on_verdict = lambda verdict: None
        with pytest.raises(ValueError, match="on_verdict"):
            AsyncDecodeService(service)

    def test_service_accessor_exposes_the_core(self):
        service = _service()
        srv = AsyncDecodeService(service)
        assert srv.service is service

    def test_cancelled_pump_resolves_pending_with_shutdown_verdicts(self):
        """Regression: cancelling the pump mid-cycle must never leave a
        submitted future dangling -- each resolves with a terminal
        shed/"shutdown" verdict."""
        import threading

        release = threading.Event()

        class BlockingService(DecodeService):
            """A core whose first run_cycle blocks until released."""

            def run_cycle(self):
                release.wait(timeout=5.0)
                return super().run_cycle()

        service = BlockingService(cycle_budget=4)
        service.register_tenant(TenantConfig("lab"))
        service.register_stream(
            StreamConfig(
                name="lab/s0",
                tenant="lab",
                plan=DecodeContext(
                    shape=(6, 6),
                    sampling_fraction=0.6,
                    solver_options={"max_iterations": 40},
                ),
                queue_limit=16,
            )
        )

        async def main():
            srv = AsyncDecodeService(service)
            await srv.start()
            futures = []
            for i in range(3):
                ticket, future = await srv.submit("lab/s0", _frame(i))
                assert ticket.admitted
                futures.append(future)
            # Let the pump enter the blocking cycle, then kill it.
            await asyncio.sleep(0.05)
            srv._pump_task.cancel()
            try:
                await srv._pump_task
            except asyncio.CancelledError:
                pass
            verdicts = await asyncio.gather(*futures)
            release.set()  # unblock the abandoned worker thread
            return verdicts

        verdicts = asyncio.run(main())
        assert [v.status for v in verdicts] == ["shed"] * 3
        assert [v.reason for v in verdicts] == ["shutdown"] * 3
        assert sorted(v.seq for v in verdicts) == [1, 2, 3]

    def test_aclose_after_external_cancellation_is_clean(self):
        """aclose() must absorb a pump cancelled behind its back and
        still uphold the every-future-resolves contract."""

        async def main():
            srv = AsyncDecodeService(_service())
            await srv.start()
            ticket, future = await srv.submit("lab/s0", _frame())
            assert ticket.admitted
            srv._pump_task.cancel()
            await srv.aclose()
            assert future.done()
            return future.result()

        verdict = asyncio.run(main())
        # Either the drain answered it (decoded) or the cancellation
        # beat the cycle (shutdown shed) -- both are terminal; dangling
        # is the only failure.
        assert verdict.status in ("decoded", "shed")
