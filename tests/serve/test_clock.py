"""Tests for the injectable time sources (repro.serve.clock)."""

import pytest

from repro.serve import MonotonicClock, VirtualClock


class TestVirtualClock:
    def test_starts_where_told(self):
        assert VirtualClock().now() == 0.0
        assert VirtualClock(start=5.5).now() == 5.5

    def test_advance_moves_time(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0
        assert clock.now() == 2.0

    def test_zero_advance_is_allowed(self):
        clock = VirtualClock(start=3.0)
        assert clock.advance(0.0) == 3.0

    def test_time_never_goes_backwards(self):
        with pytest.raises(ValueError, match="backwards"):
            VirtualClock().advance(-0.1)

    def test_does_not_move_on_its_own(self):
        clock = VirtualClock()
        assert clock.now() == clock.now() == 0.0


class TestMonotonicClock:
    def test_monotone_nondecreasing(self):
        clock = MonotonicClock()
        a, b = clock.now(), clock.now()
        assert b >= a
