"""Tests for batch coalescing and decode routing (repro.serve.coalescer)."""

import numpy as np
import pytest

from repro.core.engine import DecodeContext
from repro.serve import CoalescedBatch, Coalescer, PendingFrame, decode_pending


def _pending(seq, stream="s", frame=None):
    return PendingFrame(
        seq=seq,
        stream=stream,
        tenant="t",
        priority=0,
        frame=np.zeros((6, 6)) if frame is None else frame,
        submitted_at=0.0,
    )


def _plan():
    return DecodeContext(
        shape=(6, 6),
        sampling_fraction=0.6,
        solver_options={"max_iterations": 40},
    )


class TestCoalescer:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            Coalescer(max_batch=0)

    def test_groups_by_stream_preserving_order(self):
        dispatched = [
            _pending(1, "a"), _pending(2, "b"),
            _pending(3, "a"), _pending(4, "b"),
        ]
        batches = Coalescer(max_batch=8).coalesce(dispatched)
        assert [(b.stream, [p.seq for p in b.pendings]) for b in batches] == [
            ("a", [1, 3]),
            ("b", [2, 4]),
        ]

    def test_chunks_at_max_batch(self):
        dispatched = [_pending(s, "a") for s in range(1, 6)]
        batches = Coalescer(max_batch=2).coalesce(dispatched)
        assert [len(b.pendings) for b in batches] == [2, 2, 1]

    def test_empty_dispatch(self):
        assert Coalescer().coalesce([]) == []


class TestDecodePending:
    def test_plain_batch_yields_ok_outcomes(self):
        rng = np.random.default_rng(0)
        frames = np.random.default_rng(1).random((3, 6, 6))
        batch = CoalescedBatch(
            stream="s", pendings=tuple(
                _pending(i + 1, frame=frames[i]) for i in range(3)
            ),
        )
        outcomes = decode_pending(batch, _plan(), rng)
        assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
        assert all(o.frame.shape == (6, 6) for o in outcomes)

    def test_plain_batch_matches_engine_decode_batch_bitwise(self):
        from repro.core.engine import get_engine

        frames = list(np.random.default_rng(1).random((3, 6, 6)))
        batch = CoalescedBatch(
            stream="s",
            pendings=tuple(
                _pending(i + 1, frame=f) for i, f in enumerate(frames)
            ),
        )
        outcomes = decode_pending(batch, _plan(), np.random.default_rng(0))
        reference = get_engine().decode_batch(
            frames, _plan(), np.random.default_rng(0)
        )
        for outcome, ref in zip(outcomes, reference):
            np.testing.assert_array_equal(outcome.frame, ref)

    def test_supervised_streams_decode_through_the_decoder(self):
        from repro.resilience import ResiliencePolicy
        from repro.resilience.health import FrameGuard
        from repro.resilience.runtime import ResilientDecoder

        decoder = ResilientDecoder(
            policy=ResiliencePolicy(), guard=FrameGuard()
        )
        batch = CoalescedBatch(
            stream="s",
            pendings=(
                _pending(1, frame=np.random.default_rng(1).random((6, 6))),
            ),
        )
        outcomes = decode_pending(
            batch, _plan(), np.random.default_rng(0), decoder=decoder
        )
        assert outcomes[0].status in ("ok", "degraded")
        assert outcomes[0].attempts  # a genuine supervised outcome

    def test_total_failure_is_contained_as_failed_outcomes(self):
        from repro.resilience.chaos import SolverExceptionInjector, chaos

        batch = CoalescedBatch(
            stream="s", pendings=(_pending(1), _pending(2)),
        )
        with chaos(SolverExceptionInjector(rate=1.0, seed=0)):
            outcomes = decode_pending(
                batch, _plan(), np.random.default_rng(0)
            )
        assert [o.status for o in outcomes] == ["failed", "failed"]
        assert all(o.faults_seen == ("InjectedFault",) for o in outcomes)
        assert all(np.all(o.frame == 0.0) for o in outcomes)
