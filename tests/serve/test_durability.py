"""Tests for the write-ahead verdict journal (repro.serve.durability)."""

import json
import zlib

import pytest

from repro.serve.durability import (
    JOURNAL_SCHEMA,
    JournalError,
    JournalVersionError,
    VerdictJournal,
    encode_record,
    read_journal,
    scan_journal,
)


def _journal_path(tmp_path):
    return tmp_path / "journal.jsonl"


class TestEncoding:
    def test_record_roundtrips_through_crc(self):
        line = encode_record("admit", {"seq": 1, "stream": "s"})
        record = json.loads(line)
        crc = record.pop("crc")
        canonical = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        )
        assert zlib.crc32(canonical.encode()) == crc

    def test_unknown_record_type_rejected(self):
        with pytest.raises(JournalError, match="unknown journal record"):
            encode_record("banana", {})


class TestOpenAndAppend:
    def test_new_journal_writes_schema_header(self, tmp_path):
        path = _journal_path(tmp_path)
        journal = VerdictJournal(path)
        journal.close()
        records = read_journal(path)
        assert records[0] == {"type": "open", "schema": JOURNAL_SCHEMA}

    def test_appends_survive_close_and_reopen(self, tmp_path):
        path = _journal_path(tmp_path)
        with VerdictJournal(path) as journal:
            journal.append("admit", {"seq": 1, "stream": "s", "tenant": "t"})
        with VerdictJournal(path) as journal:
            journal.append("verdict", {"seq": 1, "status": "decoded"})
            assert len(journal.recovered_records) == 2  # header + admit
        kinds = [r["type"] for r in read_journal(path)]
        assert kinds == ["open", "admit", "verdict"]

    def test_sync_every_batches_flushes(self, tmp_path):
        path = _journal_path(tmp_path)
        journal = VerdictJournal(path, sync_every=3)
        journal.append("admit", {"seq": 1})
        journal.append("admit", {"seq": 2})
        assert journal.pending == 2
        journal.append("admit", {"seq": 3})  # hits sync_every
        assert journal.pending == 0
        journal.close()

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = VerdictJournal(_journal_path(tmp_path))
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append("admit", {"seq": 1})

    def test_sync_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="sync_every"):
            VerdictJournal(_journal_path(tmp_path), sync_every=0)


class TestTornTail:
    def test_torn_final_record_is_truncated_on_open(self, tmp_path):
        path = _journal_path(tmp_path)
        with VerdictJournal(path) as journal:
            journal.append("admit", {"seq": 1, "stream": "s"})
        with open(path, "ab") as fh:
            fh.write(b'{"type": "verdict", "seq": 2, "status"')  # torn
        scan = scan_journal(path)
        assert scan.torn == 1
        assert [r["type"] for r in scan.records] == ["open", "admit"]
        # Re-opening for writing repairs the file in place.
        with VerdictJournal(path) as journal:
            journal.append("verdict", {"seq": 1, "status": "decoded"})
        kinds = [r["type"] for r in read_journal(path)]
        assert kinds == ["open", "admit", "verdict"]

    def test_corrupt_middle_record_discards_the_rest(self, tmp_path):
        path = _journal_path(tmp_path)
        with VerdictJournal(path) as journal:
            journal.append("admit", {"seq": 1})
            journal.append("admit", {"seq": 2})
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:-10] + b"corrupted\n"  # flip bytes mid-file
        path.write_bytes(b"".join(lines))
        scan = scan_journal(path)
        # Only the header survives: nothing after the first bad record
        # can be trusted.
        assert [r["type"] for r in scan.records] == ["open"]

    def test_missing_trailing_newline_is_torn(self, tmp_path):
        path = _journal_path(tmp_path)
        VerdictJournal(path).close()
        with open(path, "ab") as fh:
            fh.write(encode_record("admit", {"seq": 1}).encode())  # no \n
        assert scan_journal(path).torn == 1


class TestEdgeCases:
    def test_empty_journal_scans_clean(self, tmp_path):
        path = _journal_path(tmp_path)
        path.write_bytes(b"")
        scan = scan_journal(path)
        assert scan.records == ()
        assert scan.torn == 0
        assert read_journal(path) == []

    def test_missing_file_scans_clean(self, tmp_path):
        assert scan_journal(tmp_path / "nope.jsonl").records == ()

    def test_version_mismatch_rejected(self, tmp_path):
        path = _journal_path(tmp_path)
        line = encode_record("open", {"schema": "repro.journal/v99"})
        path.write_text(line + "\n")
        with pytest.raises(JournalVersionError, match="v99"):
            scan_journal(path)
        with pytest.raises(JournalVersionError):
            VerdictJournal(path)

    def test_journal_without_header_rejected(self, tmp_path):
        path = _journal_path(tmp_path)
        path.write_text(encode_record("admit", {"seq": 1}) + "\n")
        with pytest.raises(JournalError, match="open"):
            scan_journal(path)

    def test_fully_corrupt_header_rejected(self, tmp_path):
        path = _journal_path(tmp_path)
        path.write_text("not json at all\n")
        with pytest.raises(JournalError, match="header itself is corrupt"):
            scan_journal(path)


class TestCompaction:
    def test_compact_rewrites_as_header_plus_checkpoint(self, tmp_path):
        path = _journal_path(tmp_path)
        with VerdictJournal(path) as journal:
            for seq in range(1, 20):
                journal.append("admit", {"seq": seq})
            size_before = None
            journal.flush()
            size_before = path.stat().st_size
            journal.compact({"seq": 19, "accounts": {}, "pending": []})
            journal.append("admit", {"seq": 20})
        kinds = [r["type"] for r in read_journal(path)]
        assert kinds == ["open", "checkpoint", "admit"]
        assert path.stat().st_size < size_before
