"""The overload acceptance test: 2x sustained load + 20% injected faults.

The service contract under the worst conditions the ISSUE specifies:

* traffic at twice the service's cycle capacity, for many cycles;
* 20% injected solver faults (the full seeded chaos taxonomy);
* a high-priority supervised tenant sharing the service with a
  low-priority plain tenant.

Asserted invariants:

1. **zero silent drops** -- every submitted frame ends as either a
   rejected ticket or exactly one terminal verdict;
2. **priority protection** -- the high-priority tenant keeps >= 90%
   decode success (``decoded``/``degraded``) on admitted frames while
   the low-priority tenant absorbs all overload shedding;
3. **deadline honesty** -- no successful verdict is marked past its
   deadline (expired frames are cancelled, not decoded);
4. **determinism** -- the whole run, chaos included, replays
   bit-identically (VirtualClock + seeded injectors, no wall-clock).
"""

import numpy as np
import pytest

from repro.core.engine import DecodeContext
from repro.resilience import ResiliencePolicy
from repro.resilience.chaos import chaos, default_taxonomy
from repro.resilience.policies import SolverBudget
from repro.serve import (
    DecodeService,
    StreamConfig,
    TenantConfig,
    VirtualClock,
)
from repro.serve.admission import REJECTION_REASONS
from repro.serve.service import SUCCESS_STATUSES

CYCLE_BUDGET = 6
TICKS = 6
FRAMES_PER_TENANT_PER_TICK = 6  # 12 submissions/cycle = 2x capacity
FAULT_RATE = 0.2
SHAPE = (6, 6)


def _plan():
    return DecodeContext(
        shape=SHAPE,
        sampling_fraction=0.6,
        solver_options={"max_iterations": 40},
    )


def _run():
    """One full overload run; returns (service, tickets, verdicts)."""
    clock = VirtualClock()
    service = DecodeService(
        clock=clock,
        cycle_budget=CYCLE_BUDGET,
        backlog_limit=CYCLE_BUDGET,
        max_batch=4,
    )
    service.register_tenant(TenantConfig("icu", priority=2))
    service.register_tenant(TenantConfig("lab", priority=0))
    service.register_stream(
        StreamConfig(
            name="icu/skin",
            tenant="icu",
            plan=_plan(),
            policy=ResiliencePolicy(
                budget=SolverBudget(max_iterations=40)
            ),
            queue_limit=12,
            seed=11,
        )
    )
    service.register_stream(
        StreamConfig(
            name="lab/skin",
            tenant="lab",
            plan=_plan(),
            queue_limit=12,
            seed=22,
        )
    )
    frame_rng = np.random.default_rng(5)
    tickets = []
    with chaos(*default_taxonomy(fault_rate=FAULT_RATE, seed=7)):
        for _ in range(TICKS):
            for _ in range(FRAMES_PER_TENANT_PER_TICK):
                tickets.append(
                    service.submit(
                        "icu/skin", frame_rng.random(SHAPE), deadline_s=4.0
                    )
                )
                tickets.append(
                    service.submit(
                        "lab/skin", frame_rng.random(SHAPE), deadline_s=4.0
                    )
                )
            service.run_cycle()
            clock.advance(1.0)
        service.drain()
    return service, tickets, service.verdicts()


@pytest.fixture(scope="module")
def run():
    """One shared overload run (the assertions are all read-only)."""
    return _run()


class TestOverloadAcceptance:
    @pytest.fixture(autouse=True)
    def _unpack(self, run):
        self.service, self.tickets, self.verdicts = run

    def test_traffic_really_was_overload(self):
        submitted = len(self.tickets)
        assert submitted == 2 * TICKS * FRAMES_PER_TENANT_PER_TICK
        decoded_capacity = TICKS * CYCLE_BUDGET
        assert submitted >= 2 * decoded_capacity

    def test_zero_silent_drops(self):
        admitted = {t.seq for t in self.tickets if t.admitted}
        rejected = {t.seq for t in self.tickets if not t.admitted}
        answered = [v.seq for v in self.verdicts]
        # Exactly one terminal verdict per admitted frame, none for
        # rejected frames, nothing unaccounted for.
        assert sorted(answered) == sorted(admitted)
        assert len(answered) == len(set(answered))
        assert admitted | rejected == {t.seq for t in self.tickets}

    def test_rejections_and_sheds_are_machine_readable(self):
        for ticket in self.tickets:
            if not ticket.admitted:
                assert ticket.reason in REJECTION_REASONS
        for verdict in self.verdicts:
            if verdict.status == "shed":
                assert verdict.reason in REJECTION_REASONS
            else:
                assert verdict.reason is None

    def test_high_priority_tenant_keeps_its_success_rate(self):
        icu = [v for v in self.verdicts if v.tenant == "icu"]
        assert icu, "high-priority tenant must have admitted frames"
        successes = [v for v in icu if v.status in SUCCESS_STATUSES]
        assert len(successes) / len(icu) >= 0.9

    def test_low_priority_tenant_absorbs_the_shedding(self):
        sheds = [v for v in self.verdicts if v.status == "shed"]
        assert sheds, "2x overload must shed something"
        assert {v.tenant for v in sheds} == {"lab"}

    def test_no_successful_verdict_missed_its_deadline(self):
        for verdict in self.verdicts:
            if verdict.status in SUCCESS_STATUSES:
                assert not verdict.deadline_missed

    def test_report_accounting_matches_the_traffic(self):
        report = self.service.report()
        for tenant in ("icu", "lab"):
            account = report["tenants"][tenant]
            assert account["submitted"] == sum(
                1 for t in self.tickets if t.tenant == tenant
            )
            assert account["admitted"] == sum(
                1 for t in self.tickets if t.tenant == tenant and t.admitted
            )
            assert sum(account["verdicts"].values()) == account["admitted"]
        assert report["backlog"] == 0

    def test_the_whole_run_replays_bit_identically(self):
        def fingerprint(tickets, verdicts):
            return (
                [(t.seq, t.status, t.reason) for t in tickets],
                [(v.seq, v.status, v.reason, v.deadline_missed)
                 for v in verdicts],
            )

        _, tickets2, verdicts2 = _run()
        assert fingerprint(self.tickets, self.verdicts) == fingerprint(
            tickets2, verdicts2
        )
