"""Tests for bounded queues and priority shedding (repro.serve.queueing)."""

import numpy as np
import pytest

from repro.serve import (
    PendingFrame,
    StreamQueue,
    select_for_dispatch,
    shed_overload,
)


def _pending(seq, stream="s", priority=0, deadline=None):
    return PendingFrame(
        seq=seq,
        stream=stream,
        tenant="t",
        priority=priority,
        frame=np.zeros((2, 2)),
        submitted_at=0.0,
        deadline=deadline,
    )


class TestStreamQueue:
    def test_validation(self):
        with pytest.raises(ValueError, match="limit"):
            StreamQueue(limit=0)
        with pytest.raises(ValueError, match="high_water"):
            StreamQueue(limit=4, high_water=5)

    def test_high_water_defaults_to_half_limit(self):
        assert StreamQueue(limit=8).high_water == 4
        assert StreamQueue(limit=1).high_water == 1

    def test_push_refuses_beyond_limit(self):
        queue = StreamQueue(limit=2)
        assert queue.push(_pending(1))
        assert queue.push(_pending(2))
        assert not queue.push(_pending(3))
        assert queue.depth == 2

    def test_congested_at_high_water(self):
        queue = StreamQueue(limit=4, high_water=2)
        queue.push(_pending(1))
        assert not queue.congested
        queue.push(_pending(2))
        assert queue.congested

    def test_expire_removes_only_past_deadlines(self):
        queue = StreamQueue(limit=8)
        keep = _pending(1, deadline=10.0)
        gone = _pending(2, deadline=1.0)
        undated = _pending(3)
        for p in (keep, gone, undated):
            queue.push(p)
        expired = queue.expire(now=5.0)
        assert expired == [gone]
        assert queue.peek_all() == (keep, undated)

    def test_expired_boundary_is_inclusive(self):
        assert _pending(1, deadline=2.0).expired(2.0)
        assert not _pending(1, deadline=2.0).expired(1.999)

    def test_remove_matches_identity_not_equality(self):
        queue = StreamQueue(limit=8)
        a, b = _pending(1), _pending(1)
        queue.push(a)
        queue.push(b)
        queue.remove([a])
        assert queue.peek_all() == (b,)


class TestSelectForDispatch:
    def test_priority_desc_then_submission_order(self):
        queues = {
            "low": StreamQueue(limit=8),
            "high": StreamQueue(limit=8),
        }
        low = [_pending(s, stream="low", priority=0) for s in (1, 3)]
        high = [_pending(s, stream="high", priority=2) for s in (2, 4)]
        for p in low + high:
            queues[p.stream].push(p)
        selected = select_for_dispatch(queues, budget=3)
        assert [p.seq for p in selected] == [2, 4, 1]
        # Selected frames left their queues; the rest stayed.
        assert queues["high"].depth == 0
        assert [p.seq for p in queues["low"].peek_all()] == [3]

    def test_zero_budget_selects_nothing(self):
        queues = {"s": StreamQueue(limit=4)}
        queues["s"].push(_pending(1))
        assert select_for_dispatch(queues, budget=0) == []
        assert queues["s"].depth == 1


class TestShedOverload:
    def test_sheds_lowest_priority_stalest_first(self):
        queues = {"a": StreamQueue(limit=8), "b": StreamQueue(limit=8)}
        frames = [
            _pending(1, stream="a", priority=0),
            _pending(2, stream="b", priority=2),
            _pending(3, stream="a", priority=0),
            _pending(4, stream="b", priority=2),
        ]
        for p in frames:
            queues[p.stream].push(p)
        shed = shed_overload(queues, backlog_limit=2)
        assert [p.seq for p in shed] == [1, 3]
        # High-priority frames kept their queue slots.
        assert [p.seq for p in queues["b"].peek_all()] == [2, 4]

    def test_no_shedding_under_the_limit(self):
        queues = {"s": StreamQueue(limit=8)}
        queues["s"].push(_pending(1))
        assert shed_overload(queues, backlog_limit=4) == []

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError, match="backlog_limit"):
            shed_overload({}, backlog_limit=-1)
