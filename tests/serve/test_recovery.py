"""Crash-recovery acceptance tests: journal + recover + replay audit.

The deterministic scenario the ISSUE pins down: seeded worker chaos
kills decode workers mid-cycle, the process "dies" with frames admitted
but undecided (plus a torn tail on the journal), and a freshly
configured service recovers from the journal alone.  After recovery:

* every admitted frame has exactly one terminal verdict in the journal;
* replayed frames' verdicts carry ``recovered=True``;
* the replay CLI re-renders the per-tenant report bit-identically from
  the journal file, with no service state.
"""

import json

import numpy as np
import pytest

from repro.core.engine import DecodeContext
from repro.resilience import chaos, default_taxonomy
from repro.serve import (
    DecodeService,
    StreamConfig,
    TenantConfig,
    VirtualClock,
    read_journal,
    replay_report,
    render_report,
)
from repro.serve.durability import JournalError
from repro.serve.replay import main as replay_main

SHAPE = (6, 6)


def _plan():
    return DecodeContext(
        shape=SHAPE,
        sampling_fraction=0.6,
        solver_options={"max_iterations": 40},
    )


def _build(journal_path, **kwargs):
    service = DecodeService(
        clock=VirtualClock(),
        cycle_budget=3,
        backlog_limit=16,
        journal=str(journal_path),
        **kwargs,
    )
    service.register_tenant(TenantConfig("icu", priority=2))
    service.register_tenant(TenantConfig("lab", priority=0))
    service.register_stream(
        StreamConfig(
            name="icu/s0", tenant="icu", plan=_plan(), queue_limit=16, seed=1
        )
    )
    service.register_stream(
        StreamConfig(
            name="lab/s0", tenant="lab", plan=_plan(), queue_limit=16, seed=2
        )
    )
    return service


def _crash_scenario(tmp_path, n_frames=8, cycles=1):
    """Admit frames, decode ``cycles`` under worker chaos, die torn."""
    journal = tmp_path / "journal.jsonl"
    service = _build(journal, supervise_workers=True)
    rng = np.random.default_rng(7)
    tickets = []
    with chaos(*default_taxonomy(0.8, seed=3, layer="executor")):
        for index in range(n_frames):
            stream = "icu/s0" if index % 2 == 0 else "lab/s0"
            tickets.append(service.submit(stream, rng.random(SHAPE)))
        for _ in range(cycles):
            service.run_cycle()
    pre_crash = [v.seq for v in service.verdicts()]
    # The crash: abandon the service, leave a torn half-record behind.
    service.journal.close()
    with open(journal, "ab") as fh:
        fh.write(b'{"type": "verdict", "seq": 999, "status')
    return journal, tickets, pre_crash


class TestCrashRecovery:
    def test_every_admitted_frame_gets_exactly_one_verdict(self, tmp_path):
        journal, tickets, pre_crash = _crash_scenario(tmp_path)
        admitted = sorted(t.seq for t in tickets if t.admitted)
        assert admitted, "scenario must admit frames"
        assert len(pre_crash) < len(admitted), (
            "scenario must crash with undecided frames"
        )

        recovered_service = _build(journal)
        recovered_seqs = recovered_service.recover()
        assert recovered_seqs == sorted(set(admitted) - set(pre_crash))
        verdicts = recovered_service.stop()
        assert sorted(v.seq for v in verdicts) == recovered_seqs
        assert all(v.recovered for v in verdicts)
        recovered_service.journal.flush()

        # The journal is the source of truth: one terminal verdict per
        # admitted seq, no duplicates, none missing.
        records = read_journal(journal)
        verdict_seqs = [
            r["seq"] for r in records if r["type"] == "verdict"
        ]
        assert sorted(verdict_seqs) == admitted
        assert len(verdict_seqs) == len(set(verdict_seqs))

    def test_replayed_verdicts_carry_recovered_flag(self, tmp_path):
        journal, tickets, pre_crash = _crash_scenario(tmp_path)
        recovered_service = _build(journal)
        recovered_seqs = recovered_service.recover()
        recovered_service.stop()
        recovered_service.journal.flush()
        report = replay_report(journal)
        flagged = sorted(
            v["seq"] for v in report["timeline"] if v["recovered"]
        )
        assert flagged == recovered_seqs
        unflagged = [
            v["seq"] for v in report["timeline"] if not v["recovered"]
        ]
        assert sorted(unflagged) == sorted(pre_crash)
        assert report["outstanding"] == []

    def test_recovery_restores_accounting_and_counters(self, tmp_path):
        journal, tickets, _ = _crash_scenario(tmp_path)
        recovered_service = _build(journal)
        recovered_service.recover()
        report = recovered_service.report()
        submitted = sum(
            t["submitted"] for t in report["tenants"].values()
        )
        assert submitted == len(tickets)
        # The sequence counter resumes past every journalled seq, so
        # post-recovery submissions can never collide.
        ticket = recovered_service.submit(
            "icu/s0", np.random.default_rng(0).random(SHAPE)
        )
        assert ticket.seq > max(t.seq for t in tickets)

    def test_replay_cli_is_bit_identical(self, tmp_path, capsys):
        journal, _, _ = _crash_scenario(tmp_path)
        recovered_service = _build(journal)
        recovered_service.recover()
        recovered_service.stop()
        recovered_service.journal.flush()

        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert replay_main([str(journal), "--output", str(out_a)]) == 0
        assert replay_main([str(journal), "--output", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        # And the library renders identically to the CLI.
        assert (
            out_a.read_text().rstrip("\n")
            == render_report(replay_report(journal))
        )

    def test_replay_tenant_filter(self, tmp_path):
        journal, _, _ = _crash_scenario(tmp_path)
        service = _build(journal)
        service.recover()
        service.stop()
        service.journal.flush()
        report = replay_report(journal, tenant="icu")
        assert set(report["tenants"]) == {"icu"}
        assert all(v["tenant"] == "icu" for v in report["timeline"])

    def test_recover_requires_matching_configuration(self, tmp_path):
        journal, _, _ = _crash_scenario(tmp_path)
        half_configured = DecodeService(
            clock=VirtualClock(), journal=str(journal)
        )
        half_configured.register_tenant(TenantConfig("icu", priority=2))
        half_configured.register_stream(
            StreamConfig(name="icu/s0", tenant="icu", plan=_plan())
        )
        with pytest.raises(JournalError, match="unregistered tenant"):
            half_configured.recover()

    def test_recover_requires_a_journal(self):
        service = DecodeService(clock=VirtualClock())
        with pytest.raises(JournalError, match="requires a journal"):
            service.recover()
        with pytest.raises(JournalError, match="requires a journal"):
            service.checkpoint()


class TestDuplicateReplay:
    def test_replaying_duplicated_records_is_idempotent(self, tmp_path):
        """A journal whose records repeat (at-least-once double-journal)
        must produce the same report as the original."""
        journal, _, _ = _crash_scenario(tmp_path)
        service = _build(journal)
        service.recover()
        service.stop()
        service.journal.flush()
        original = replay_report(journal)

        records = journal.read_bytes().splitlines(keepends=True)
        doubled = tmp_path / "doubled.jsonl"
        # header once, then every event record twice.
        doubled.write_bytes(records[0] + b"".join(
            line + line for line in records[1:]
        ))
        duplicated = replay_report(doubled)
        for key in ("tenants", "timeline", "outstanding"):
            assert duplicated[key] == original[key], key

    def test_recover_twice_yields_nothing_new(self, tmp_path):
        journal, _, _ = _crash_scenario(tmp_path)
        service = _build(journal)
        first = service.recover()
        assert first
        second = service.recover()
        # Idempotent re-apply: the same journal records re-enqueue the
        # same frames; the queue dedupes nothing, so callers must not
        # recover twice -- but accounting stays consistent because the
        # re-read is a pure function of the same records.
        assert second == first
        service.stop()


class TestCheckpoint:
    def test_checkpoint_preserves_replay_report(self, tmp_path):
        journal, _, _ = _crash_scenario(tmp_path)
        service = _build(journal)
        service.recover()
        service.stop()
        before = replay_report(journal)["tenants"]
        service.checkpoint(compact=True)
        after = replay_report(journal)["tenants"]
        assert after == before
        service.journal.close()

    def test_recovery_resumes_from_checkpoint(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        service = _build(journal)
        rng = np.random.default_rng(5)
        for _ in range(4):
            service.submit("icu/s0", rng.random(SHAPE))
        service.checkpoint(compact=True)  # 4 frames pending, none decided
        service.journal.close()

        fresh = _build(journal)
        recovered = fresh.recover()
        assert len(recovered) == 4
        verdicts = fresh.stop()
        assert len(verdicts) == 4
        assert all(v.recovered for v in verdicts)
