"""Tests for the deterministic service core (repro.serve.service)."""

import json

import numpy as np
import pytest

from repro.core.engine import DecodeContext
from repro.serve import (
    DecodeService,
    Quota,
    StreamConfig,
    TenantConfig,
    VirtualClock,
)
from repro.serve.admission import REJECTION_REASONS
from repro.serve.service import SERVE_SCHEMA


def _plan(shape=(6, 6)):
    return DecodeContext(
        shape=shape,
        sampling_fraction=0.6,
        solver_options={"max_iterations": 40},
    )


def _service(**kwargs):
    clock = kwargs.pop("clock", VirtualClock())
    service = DecodeService(clock=clock, **kwargs)
    service.register_tenant(TenantConfig("lab", priority=0))
    service.register_stream(
        StreamConfig(name="lab/s0", tenant="lab", plan=_plan())
    )
    return service, clock


def _frame(seed=0, shape=(6, 6)):
    return np.random.default_rng(seed).random(shape)


class TestRegistration:
    def test_stream_requires_registered_tenant(self):
        service = DecodeService(clock=VirtualClock())
        with pytest.raises(KeyError, match="unknown tenant"):
            service.register_stream(
                StreamConfig(name="s", tenant="ghost", plan=_plan())
            )

    def test_duplicate_stream_rejected(self):
        service, _ = _service()
        with pytest.raises(ValueError, match="already registered"):
            service.register_stream(
                StreamConfig(name="lab/s0", tenant="lab", plan=_plan())
            )

    def test_unknown_stream_submit_is_a_caller_bug(self):
        service, _ = _service()
        with pytest.raises(KeyError, match="unknown stream"):
            service.submit("ghost", _frame())

    def test_config_validation(self):
        with pytest.raises(ValueError, match="cycle_budget"):
            DecodeService(cycle_budget=0)
        with pytest.raises(ValueError, match="backlog_limit"):
            DecodeService(backlog_limit=-1)


class TestSubmission:
    def test_accepted_ticket(self):
        service, _ = _service()
        ticket = service.submit("lab/s0", _frame())
        assert ticket.status == "accepted"
        assert ticket.admitted
        assert ticket.reason is None
        assert ticket.queue_depth == 1

    def test_backpressure_signal_past_high_water(self):
        service = DecodeService(clock=VirtualClock())
        service.register_tenant(TenantConfig("lab"))
        service.register_stream(
            StreamConfig(
                name="lab/s0", tenant="lab", plan=_plan(), queue_limit=4
            )
        )
        statuses = [
            service.submit("lab/s0", _frame()).status for _ in range(5)
        ]
        assert statuses == [
            "accepted", "queued", "queued", "queued", "rejected",
        ]

    def test_queue_full_rejection(self):
        service = DecodeService(clock=VirtualClock())
        service.register_tenant(TenantConfig("lab"))
        service.register_stream(
            StreamConfig(
                name="lab/s0", tenant="lab", plan=_plan(), queue_limit=1
            )
        )
        assert service.submit("lab/s0", _frame()).admitted
        ticket = service.submit("lab/s0", _frame())
        assert (ticket.status, ticket.reason) == ("rejected", "queue_full")

    @pytest.mark.parametrize(
        "bad",
        [
            np.zeros((3, 3)),  # wrong shape
            np.full((6, 6), np.nan),
            np.full((6, 6), np.inf),
        ],
    )
    def test_invalid_frames_rejected(self, bad):
        service, _ = _service()
        ticket = service.submit("lab/s0", bad)
        assert (ticket.status, ticket.reason) == ("rejected", "invalid_frame")

    def test_unsatisfiable_deadline_rejected_upfront(self):
        service, _ = _service()
        ticket = service.submit("lab/s0", _frame(), deadline_s=0.0)
        assert ticket.reason == "deadline_unsatisfiable"

    def test_quota_rejections_carry_the_reason(self):
        service = DecodeService(clock=VirtualClock())
        service.register_tenant(
            TenantConfig("lab", quota=Quota(rate=0.0, burst=2))
        )
        service.register_stream(
            StreamConfig(name="lab/s0", tenant="lab", plan=_plan())
        )
        tickets = [service.submit("lab/s0", _frame()) for _ in range(3)]
        assert [t.status for t in tickets] == [
            "accepted", "accepted", "rejected",
        ]
        assert tickets[2].reason == "tenant_rate_exceeded"

    def test_ticket_to_dict_is_schema_tagged_json(self):
        service, _ = _service()
        payload = json.loads(
            json.dumps(service.submit("lab/s0", _frame()).to_dict())
        )
        assert payload["schema"] == SERVE_SCHEMA
        assert payload["status"] == "accepted"


class TestDispatch:
    def test_plain_decode_verdict(self):
        service, _ = _service()
        ticket = service.submit("lab/s0", _frame())
        (verdict,) = service.run_cycle()
        assert verdict.seq == ticket.seq
        assert verdict.status == "decoded"
        assert verdict.reason is None
        assert verdict.delivered_frame.shape == (6, 6)
        assert not verdict.deadline_missed

    def test_verdict_to_dict_nests_the_outcome_schema(self):
        service, _ = _service()
        service.submit("lab/s0", _frame())
        (verdict,) = service.run_cycle()
        payload = json.loads(json.dumps(verdict.to_dict()))
        assert payload["schema"] == SERVE_SCHEMA
        assert payload["outcome"]["schema"] == "repro.outcome/v1"
        assert payload["outcome"]["status"] == "ok"

    def test_deadline_expiry_cancels_instead_of_decoding(self):
        service, clock = _service()
        ticket = service.submit("lab/s0", _frame(), deadline_s=1.0)
        clock.advance(2.0)
        (verdict,) = service.run_cycle()
        assert verdict.seq == ticket.seq
        assert (verdict.status, verdict.reason) == ("shed", "deadline_expired")
        assert verdict.deadline_missed
        assert verdict.outcome is None

    def test_overload_shed_answers_every_frame(self):
        service = DecodeService(
            clock=VirtualClock(), cycle_budget=2, backlog_limit=1
        )
        service.register_tenant(TenantConfig("lab"))
        service.register_stream(
            StreamConfig(
                name="lab/s0", tenant="lab", plan=_plan(), queue_limit=16
            )
        )
        tickets = [service.submit("lab/s0", _frame(i)) for i in range(5)]
        assert all(t.admitted for t in tickets)
        verdicts = service.run_cycle()
        by_status = {}
        for v in verdicts:
            by_status.setdefault(v.status, []).append(v.seq)
        # 2 decoded (the budget), 2 shed (backlog 3 > limit 1), 1 queued.
        assert len(by_status["decoded"]) == 2
        assert by_status["shed"] == [3, 4]  # stalest excess first
        assert all(
            v.reason == "overload_shed" for v in verdicts if v.status == "shed"
        )
        assert service.backlog == 1

    def test_breaker_opens_on_faulting_stream_and_alerts(self):
        from repro.resilience.chaos import SolverExceptionInjector, chaos

        service, _ = _service()
        with chaos(SolverExceptionInjector(rate=1.0, seed=0)):
            for i in range(4):
                service.submit("lab/s0", _frame(i))
                service.run_cycle()
        # Four failed verdicts tripped the stream breaker.
        assert [v.status for v in service.verdicts()] == ["failed"] * 4
        ticket = service.submit("lab/s0", _frame())
        assert (ticket.status, ticket.reason) == ("rejected", "breaker_open")
        kinds = [a.kind for a in service.pop_alerts()]
        assert "breaker_open" in kinds

    def test_every_reason_is_in_the_taxonomy(self):
        service, clock = _service()
        service.submit("lab/s0", _frame(), deadline_s=1.0)
        clock.advance(2.0)
        service.run_cycle()
        reasons = {
            v.reason for v in service.verdicts() if v.reason is not None
        }
        assert reasons <= REJECTION_REASONS


class TestLifecycle:
    def test_drain_answers_the_whole_backlog(self):
        service = DecodeService(
            clock=VirtualClock(), cycle_budget=2, backlog_limit=64
        )
        service.register_tenant(TenantConfig("lab"))
        service.register_stream(
            StreamConfig(
                name="lab/s0", tenant="lab", plan=_plan(), queue_limit=16
            )
        )
        for i in range(6):
            service.submit("lab/s0", _frame(i))
        verdicts = service.drain()
        assert len(verdicts) == 6
        assert service.backlog == 0

    def test_stop_rejects_new_but_answers_admitted(self):
        service, _ = _service()
        admitted = service.submit("lab/s0", _frame())
        assert admitted.admitted
        verdicts = service.stop()
        assert [v.seq for v in verdicts] == [admitted.seq]
        ticket = service.submit("lab/s0", _frame())
        assert (ticket.status, ticket.reason) == (
            "rejected", "service_stopped",
        )

    def test_report_accounting_is_consistent_and_json(self):
        service, _ = _service()
        service.submit("lab/s0", _frame())
        service.submit("lab/s0", np.zeros((3, 3)))  # invalid
        service.drain()
        report = json.loads(json.dumps(service.report()))
        lab = report["tenants"]["lab"]
        assert report["schema"] == SERVE_SCHEMA
        assert lab["submitted"] == 2
        assert lab["admitted"] == 1
        assert lab["rejected"] == {"invalid_frame": 1}
        assert lab["verdicts"] == {"decoded": 1}
        assert report["streams"]["lab/s0"]["breaker"] == "closed"
        assert report["backlog"] == 0


class TestDeterminism:
    def test_identical_traffic_yields_identical_verdicts(self):
        def run():
            service = DecodeService(
                clock=VirtualClock(), cycle_budget=2, backlog_limit=2
            )
            service.register_tenant(TenantConfig("lab"))
            service.register_stream(
                StreamConfig(
                    name="lab/s0", tenant="lab", plan=_plan(),
                    queue_limit=8, seed=3,
                )
            )
            trace = []
            for tick in range(4):
                for i in range(4):
                    ticket = service.submit(
                        "lab/s0", _frame(tick * 4 + i), deadline_s=3.0
                    )
                    trace.append((ticket.seq, ticket.status, ticket.reason))
                service.run_cycle()
            for verdict in service.drain():
                pass
            trace.extend(
                (v.seq, v.status, v.reason) for v in service.verdicts()
            )
            return trace

        assert run() == run()


class TestDrainExhaustion:
    def _backlogged_service(self, frames=5):
        from repro.serve import DecodeService

        service = DecodeService(
            clock=VirtualClock(), cycle_budget=1, backlog_limit=64
        )
        service.register_tenant(TenantConfig("lab"))
        service.register_stream(
            StreamConfig(
                name="lab/s0", tenant="lab", plan=_plan(), queue_limit=16
            )
        )
        for i in range(frames):
            service.submit("lab/s0", _frame(i))
        return service

    def test_exhaustion_raises_by_default_with_partial_verdicts(self):
        from repro.serve import DrainExhausted

        service = self._backlogged_service(frames=5)
        with pytest.raises(DrainExhausted, match="after 2 drain cycles"):
            service.drain(max_cycles=2)
        try:
            service.drain(max_cycles=1)
        except DrainExhausted as exc:
            # The partial answer rides on the exception.
            assert len(exc.verdicts) == 1
            assert exc.backlog == 2
        else:  # pragma: no cover - assertion path
            pytest.fail("expected DrainExhausted")

    def test_exhaustion_returns_explicit_marker_when_asked(self):
        from repro.serve import DrainResult

        service = self._backlogged_service(frames=5)
        verdicts = service.drain(max_cycles=2, on_exhausted="return")
        assert isinstance(verdicts, DrainResult)
        assert verdicts.drained is False
        assert len(verdicts) == 2
        assert service.backlog == 3
        # Finishing the drain flips the marker back to honest success.
        rest = service.drain(on_exhausted="return")
        assert rest.drained is True
        assert service.backlog == 0

    def test_successful_drain_is_marked_drained(self):
        service = self._backlogged_service(frames=2)
        verdicts = service.drain()
        assert verdicts.drained is True
        assert isinstance(verdicts, list)  # backwards compatible
        assert len(verdicts) == 2

    def test_invalid_on_exhausted_rejected(self):
        service = self._backlogged_service(frames=1)
        with pytest.raises(ValueError, match="on_exhausted"):
            service.drain(on_exhausted="explode")
