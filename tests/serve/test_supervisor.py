"""Tests for stream health supervision (repro.serve.supervisor)."""

import json

import pytest

from repro.serve import StreamSupervisor


def _supervisor(**overrides):
    kwargs = dict(
        stream="s0",
        tenant="t0",
        window=8,
        fault_ratio_threshold=0.5,
        loss_ratio_threshold=0.5,
        min_observations=4,
        cooldown=3,
    )
    kwargs.update(overrides)
    return StreamSupervisor(**kwargs)


def _trip(supervisor):
    """Feed enough faults to trip the breaker."""
    for _ in range(supervisor.min_observations):
        supervisor.observe("failed")
    assert supervisor.state == "open"


class TestBreakerLifecycle:
    def test_starts_closed_and_admits(self):
        supervisor = _supervisor()
        assert supervisor.state == "closed"
        assert all(supervisor.admit() for _ in range(10))

    def test_fault_ratio_trips_breaker_with_critical_alert(self):
        supervisor = _supervisor()
        _trip(supervisor)
        alerts = supervisor.pop_alerts()
        assert [a.kind for a in alerts] == ["breaker_open"]
        assert alerts[0].severity == "critical"
        assert not supervisor.admit()

    def test_no_trip_before_min_observations(self):
        supervisor = _supervisor(min_observations=4)
        supervisor.observe("failed")
        supervisor.observe("failed")
        assert supervisor.state == "closed"

    def test_cooldown_then_single_probe(self):
        supervisor = _supervisor(cooldown=3)
        _trip(supervisor)
        # Exactly `cooldown` rejections, then one probe admission.
        assert [supervisor.admit() for _ in range(4)] == [
            False, False, False, True,
        ]
        assert supervisor.state == "half_open"
        # Probe in flight: everyone else is rejected.
        assert not supervisor.admit()
        assert not supervisor.admit()

    def test_probe_success_closes_and_clears_window(self):
        supervisor = _supervisor(cooldown=1)
        _trip(supervisor)
        supervisor.pop_alerts()
        assert not supervisor.admit()
        assert supervisor.admit()  # the probe
        supervisor.observe("decoded")
        assert supervisor.state == "closed"
        kinds = [a.kind for a in supervisor.pop_alerts()]
        assert kinds == ["breaker_half_open", "breaker_closed"]
        # The window restarts: the old faults cannot instantly re-trip.
        supervisor.observe("decoded")
        assert supervisor.state == "closed"
        assert supervisor.ratios()["fault"] == 0.0

    def test_probe_failure_reopens_for_a_full_cooldown(self):
        supervisor = _supervisor(cooldown=2)
        _trip(supervisor)
        supervisor.pop_alerts()
        assert [supervisor.admit() for _ in range(3)] == [False, False, True]
        supervisor.observe("failed")
        assert supervisor.state == "open"
        kinds = [a.kind for a in supervisor.pop_alerts()]
        assert kinds == ["breaker_half_open", "breaker_open"]
        # A fresh, full cooldown before the next probe.
        assert [supervisor.admit() for _ in range(3)] == [False, False, True]

    def test_degraded_probe_counts_as_recovery(self):
        supervisor = _supervisor(cooldown=1)
        _trip(supervisor)
        assert not supervisor.admit()
        assert supervisor.admit()
        supervisor.observe("degraded")
        assert supervisor.state == "closed"


class TestLossAlerts:
    def test_loss_ratio_warns_once_and_rearms(self):
        supervisor = _supervisor(window=4, min_observations=4)
        for _ in range(4):
            supervisor.observe("shed")
        kinds = [a.kind for a in supervisor.pop_alerts()]
        assert kinds == ["loss_ratio_high"]
        # Still losing: no duplicate alert.
        supervisor.observe("shed")
        assert supervisor.pop_alerts() == ()
        # Recovery re-arms the alert for the next incident.
        for _ in range(4):
            supervisor.observe("decoded")
        for _ in range(4):
            supervisor.observe("shed")
        kinds = [a.kind for a in supervisor.pop_alerts()]
        assert kinds == ["loss_ratio_high"]

    def test_deadline_missed_decode_counts_as_loss(self):
        supervisor = _supervisor(window=4, min_observations=4)
        for _ in range(4):
            supervisor.observe("decoded", deadline_missed=True)
        assert supervisor.ratios()["loss"] == 1.0
        assert supervisor.state == "closed"  # losses warn, never trip


class TestReporting:
    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            _supervisor(window=0)
        with pytest.raises(ValueError, match="fault_ratio_threshold"):
            _supervisor(fault_ratio_threshold=0.0)
        with pytest.raises(ValueError, match="cooldown"):
            _supervisor(cooldown=0)

    def test_snapshot_and_alert_are_json_safe(self):
        supervisor = _supervisor()
        _trip(supervisor)
        (alert,) = supervisor.pop_alerts()
        payload = json.dumps(
            {"snapshot": supervisor.snapshot(), "alert": alert.to_dict()}
        )
        decoded = json.loads(payload)
        assert decoded["snapshot"]["breaker"] == "open"
        assert decoded["alert"]["kind"] == "breaker_open"
        assert decoded["alert"]["observed_frames"] == supervisor.observed
