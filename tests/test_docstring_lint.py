"""Tier-1 enforcement of docstrings on the documented public API.

Runs the dependency-free checker in ``tools/check_docstrings.py`` over
the enforced modules (core/solvers, array/flexible_encoder.py,
repro.instrument, repro.bench); CI additionally runs pydocstyle with
the same scope where available.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docstrings.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docstrings", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_enforced_modules_have_docstrings(capsys):
    checker = _load_checker()
    code = checker.main([])
    out = capsys.readouterr()
    assert code == 0, f"missing docstrings:\n{out.out}"


def test_checker_flags_missing_docstrings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def documented():\n"
        '    """Has one."""\n'
        "\n"
        "def naked():\n"
        "    pass\n"
        "\n"
        "class Naked:\n"
        "    def method(self):\n"
        "        pass\n"
        "\n"
        "    def _private(self):\n"
        "        pass\n"
    )
    checker = _load_checker()
    problems = checker.check_file(bad)
    messages = "\n".join(problems)
    assert "missing module docstring" in messages
    assert "'naked'" in messages
    assert "'Naked'" in messages
    assert "'Naked.method'" in messages
    assert "_private" not in messages
    assert "documented" not in messages


def test_checker_cli_exit_codes(tmp_path, capsys):
    checker = _load_checker()
    good = tmp_path / "good.py"
    good.write_text('"""Module."""\n')
    assert checker.main([str(good)]) == 0
    bad = tmp_path / "bad.py"
    bad.write_text("x = 1\n")
    assert checker.main([str(bad)]) == 1
    err = capsys.readouterr()
    assert "missing module docstring" in err.out
