"""Tier-1 enforcement of the engine and executor seams.

Runs ``tools/check_engine_seam.py`` over the library and example code:
no ``Dct2Basis`` / ``Dct3Basis`` / ``Haar2Basis`` / ``SensingOperator``
construction may exist outside ``repro.core.engine`` (one construction
site is what makes the operator cache authoritative), and no
``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` / ``Pool``
construction outside ``repro.core.executor`` (one pool seam is what
keeps every fan-out deterministic and instrumented), no
``.to_dense()`` / ``.to_matrix()`` dense materialisation outside the
operator layer's sanctioned sites (matrix-free applies are what keep
the implicit route ``O(N log N)`` in time and ~zero in memory), and no
direct ``Phi`` construction (``RowSamplingMatrix`` / dense code
factories) outside the measurement layer (one draw recipe per family
is what the bit-reproducibility contract pins).
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_engine_seam.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_engine_seam", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_construction_outside_engine(capsys):
    checker = _load_checker()
    code = checker.main([])
    out = capsys.readouterr()
    assert code == 0, f"engine-seam violations:\n{out.out}"


def test_checker_flags_guarded_calls(tmp_path):
    checker = _load_checker()
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.core import Dct2Basis, SensingOperator\n"
        "basis = Dct2Basis((8, 8))\n"
        "op = SensingOperator(phi, basis)\n"
    )
    problems = checker.check_file(bad)
    assert len(problems) == 2
    assert "Dct2Basis" in problems[0]
    assert "SensingOperator" in problems[1]


def test_checker_ignores_strings_and_definitions(tmp_path):
    checker = _load_checker()
    ok = tmp_path / "ok.py"
    ok.write_text(
        "class Dct2Basis:\n"
        "    def clone(self):\n"
        "        return Dct2Basis()\n"  # home module may self-construct
        "\n"
        'LABEL = "SensingOperator(phi, basis)"\n'  # repr text, not a call
    )
    assert checker.check_file(ok) == []


def test_checker_flags_dense_materialisation(tmp_path):
    checker = _load_checker()
    bad = tmp_path / "bad_dense.py"
    bad.write_text(
        "a = operator.to_dense()\n"
        "psi = basis.to_matrix()\n"
    )
    problems = checker.check_file(bad)
    assert len(problems) == 2
    assert "to_dense" in problems[0] and "matrix-free" in problems[0]
    assert "to_matrix" in problems[1]


def test_dense_materialisation_allowed_in_sanctioned_sites():
    checker = _load_checker()
    for rel in (
        ("src", "repro", "core", "operators.py"),
        ("src", "repro", "core", "solvers", "basis_pursuit.py"),
    ):
        assert checker.check_file(REPO_ROOT.joinpath(*rel)) == []


def test_checker_flags_raw_pool_construction(tmp_path):
    checker = _load_checker()
    bad = tmp_path / "bad_pool.py"
    bad.write_text(
        "from concurrent import futures\n"
        "import multiprocessing\n"
        "pool = futures.ThreadPoolExecutor(max_workers=4)\n"
        "procs = futures.ProcessPoolExecutor()\n"
        "legacy = multiprocessing.Pool(2)\n"
    )
    problems = checker.check_file(bad)
    assert len(problems) == 3
    assert all("repro.core.executor" in p for p in problems)


def test_pool_construction_allowed_in_executor_seam():
    checker = _load_checker()
    seam = REPO_ROOT / "src" / "repro" / "core" / "executor.py"
    assert checker.check_file(seam) == []


def test_checker_flags_direct_phi_construction(tmp_path):
    checker = _load_checker()
    bad = tmp_path / "bad_phi.py"
    bad.write_text(
        "from repro.core.sensing import RowSamplingMatrix, bernoulli_matrix\n"
        "phi = RowSamplingMatrix(n=16, indices=idx)\n"
        "phi2 = RowSamplingMatrix.random(16, 8, rng)\n"
        "code = bernoulli_matrix(8, 16, rng)\n"
    )
    problems = checker.check_file(bad)
    assert len(problems) == 3
    assert all("repro.core.measurement" in p for p in problems)
    # The classmethod spelling is caught via the attribute's owner.
    assert any("RowSamplingMatrix.random" in p for p in problems)


def test_phi_construction_allowed_in_measurement_layer():
    checker = _load_checker()
    for rel in (
        ("src", "repro", "core", "measurement.py"),
        ("src", "repro", "core", "sensing.py"),
    ):
        assert checker.check_file(REPO_ROOT.joinpath(*rel)) == []


def test_phi_seam_holds_across_library_and_examples():
    """No library/example module may construct Phi outside the seam."""
    checker = _load_checker()
    problems = []
    for root in checker.SCANNED:
        for path in sorted((REPO_ROOT / root).rglob("*.py")):
            problems.extend(
                p
                for p in checker.check_file(path)
                if "measurement code" in p
            )
    assert problems == []


def test_checker_cli_exit_codes(tmp_path, capsys):
    checker = _load_checker()
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert checker.main([str(good)]) == 0
    bad = tmp_path / "bad.py"
    bad.write_text("y = Dct2Basis((4, 4))\n")
    assert checker.main([str(bad)]) == 1
    out = capsys.readouterr()
    assert "outside" in out.out
