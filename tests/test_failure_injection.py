"""Cross-cutting failure-injection tests.

Each scenario pushes a subsystem into a pathological corner and checks
the failure is *contained*: a clear exception or a graceful degradation,
never silent nonsense.
"""

import numpy as np
import pytest

from repro.array import ActiveMatrix, FlexibleEncoder, ReadoutChain
from repro.circuits.logic_sim import LogicSimulator
from repro.circuits.mna import ConvergenceError, MnaSimulator
from repro.circuits.netlist import GROUND, Circuit
from repro.core import (
    Dct2Basis,
    RowSamplingMatrix,
    SensingOperator,
    rmse,
    sample_and_reconstruct,
    solve,
)
from repro.devices import DefectMap, DefectType, LineDefectMap, PixelDefect


class TestSolverCorners:
    def test_single_measurement_runs(self):
        """m = 1: every solver returns a finite answer of the right shape."""
        rng = np.random.default_rng(0)
        phi = RowSamplingMatrix.random(64, 1, rng)
        operator = SensingOperator(phi, Dct2Basis((8, 8)))
        b = np.array([0.5])
        for name in ("fista", "omp", "iht"):
            result = solve(name, operator, b, sparsity=1)
            assert np.all(np.isfinite(result.coefficients))

    def test_zero_measurements_vector(self):
        """All-zero measurements recover the all-zero frame."""
        rng = np.random.default_rng(1)
        phi = RowSamplingMatrix.random(64, 32, rng)
        operator = SensingOperator(phi, Dct2Basis((8, 8)))
        result = solve("fista", operator, np.zeros(32))
        assert np.allclose(result.coefficients, 0.0)

    def test_full_sampling_is_near_exact(self):
        """M = N degenerates to plain inversion (lam -> 0 removes the
        residual L1 shrinkage)."""
        rng = np.random.default_rng(2)
        frame = rng.random((8, 8))
        recon = sample_and_reconstruct(
            frame, 1.0, rng, solver_options={"lam": 1e-10}
        )
        assert rmse(frame, recon) < 1e-3


class TestEncoderCorners:
    def test_fully_defective_row_still_scans(self):
        """A dead row leaves the rest of the scan intact."""
        shape = (8, 8)
        dead = LineDefectMap.sample_lines(
            shape, 1, 0, np.random.default_rng(3),
            kind=DefectType.OPEN_CHANNEL,
        )
        array = ActiveMatrix(shape, defect_map=dead)
        encoder = FlexibleEncoder(
            array, readout=ReadoutChain(noise_sigma_v=0.0, adc_bits=16)
        )
        exclude = np.flatnonzero(dead.mask().ravel())
        phi = RowSamplingMatrix.random(
            64, 40, np.random.default_rng(4), exclude=exclude
        )
        frame = np.random.default_rng(5).random(shape)
        output = encoder.scan_normalized(frame, phi)
        assert np.all(np.isfinite(output.measurements))
        assert len(output.measurements) == 40

    def test_oversampling_after_exclusion_raises(self):
        """Asking for more samples than healthy pixels fails loudly."""
        shape = (4, 4)
        all_bad = DefectMap(
            shape=shape,
            defects=[
                PixelDefect(r, c, DefectType.OPEN_CHANNEL)
                for r in range(4)
                for c in range(4)
            ],
        )
        with pytest.raises(ValueError):
            sample_and_reconstruct(
                np.zeros(shape), 0.5, np.random.default_rng(0),
                exclude_mask=all_bad.mask(),
            )


class TestCircuitCorners:
    def test_floating_node_still_solves_via_gmin(self):
        """A node with no DC path resolves through the gmin leak."""
        circuit = Circuit("floating")
        circuit.add_voltage_source("v1", "a", GROUND, 1.0)
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "c", 1e-9)  # c floats at DC
        op = MnaSimulator(circuit).dc_operating_point()
        assert np.isfinite(op["c"])

    def test_contradictory_sources_raise(self):
        """Two sources forcing one net to different voltages cannot
        converge to a consistent solution."""
        circuit = Circuit("conflict")
        circuit.add_voltage_source("v1", "a", GROUND, 1.0)
        circuit.add_voltage_source("v2", "a", GROUND, 2.0)
        with pytest.raises((ConvergenceError, np.linalg.LinAlgError)):
            MnaSimulator(circuit).dc_operating_point()

    def test_zero_delay_loop_is_bounded(self):
        """A combinational loop (ring of inverters) terminates: the
        event queue drains because events beyond stop_s are dropped."""
        sim = LogicSimulator()
        sim.add_gate("u0", "INV", ["a"], "b")
        sim.add_gate("u1", "INV", ["b"], "c")
        sim.add_gate("u2", "INV", ["c"], "a_fb")
        # not actually closed (a != a_fb) -- now close it via a buffer
        sim2 = LogicSimulator()
        sim2.add_gate("u0", "INV", ["x"], "y")
        sim2.add_gate("u1", "BUF", ["y"], "x")
        waves = sim2.run(1e-3)  # oscillates; must return
        assert "x" in waves


class TestReadoutCorners:
    def test_one_bit_adc_binarizes(self):
        chain = ReadoutChain(noise_sigma_v=0.0, sh_droop=0.0, adc_bits=1)
        codes = chain.convert_normalized(np.linspace(0, 1, 20))
        assert set(np.unique(codes)) <= {0.0, 1.0}

    def test_saturating_input_clips_not_wraps(self):
        chain = ReadoutChain(noise_sigma_v=0.0)
        codes = chain.convert_normalized(np.array([10.0, -10.0]))
        assert codes[0] == 1.0
        assert codes[1] == 0.0
