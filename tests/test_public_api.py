"""Public-API integrity: every exported symbol exists and is documented.

Walks every ``repro`` subpackage's ``__all__``, checks the names resolve,
and enforces docstrings on every public class, function and method --
the "doc comments on every public item" guarantee, kept honest by CI.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.solvers",
    "repro.devices",
    "repro.circuits",
    "repro.array",
    "repro.datasets",
    "repro.ml",
    "repro.eda",
    "repro.experiments",
    "repro.resilience",
    "repro.serve",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_module_has_docstring(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__ and module.__doc__.strip(), package_name


def _public_members(package_name):
    module = importlib.import_module(package_name)
    for name in getattr(module, "__all__", []):
        item = getattr(module, name, None)
        if inspect.isclass(item) or inspect.isfunction(item):
            yield f"{package_name}.{name}", item


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_items_documented(package_name):
    undocumented = []
    for qualified, item in _public_members(package_name):
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(qualified)
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not callable(method) and not isinstance(method, property):
                    continue
                # inspect.getdoc follows the MRO, so an override is
                # documented when its base-class contract is.
                doc = inspect.getdoc(getattr(item, method_name))
                if not (doc and doc.strip()):
                    undocumented.append(f"{qualified}.{method_name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
