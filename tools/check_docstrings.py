#!/usr/bin/env python
"""Dependency-free docstring linter for the enforced modules.

CI also runs ``pydocstyle`` where available, but the container this repo
grows in has no linters installed, so tier-1 enforcement uses this
AST-based checker instead.  It requires a docstring on:

* every module,
* every public class, and
* every public function/method (including ``__init__`` is *not*
  required; dunders and ``_``-prefixed names are skipped),

within the enforced paths listed in :data:`ENFORCED` (the public solver
API, the flexible encoder, the instrument subsystem, the benchmark
framework and the decode service — matching the ``[tool.pydocstyle]``
scope in ``pyproject.toml``).

Usage::

    python tools/check_docstrings.py            # lint the enforced set
    python tools/check_docstrings.py PATH ...   # lint specific files

Exit code 0 when clean, 1 with one ``path:line: message`` per problem
otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

ENFORCED = [
    "src/repro/core/solvers",
    "src/repro/array/flexible_encoder.py",
    "src/repro/instrument",
    "src/repro/bench",
    "src/repro/serve",
]
"""Paths (relative to the repo root) whose public API must be documented."""


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _iter_enforced_files(args: list[str]) -> list[Path]:
    if args:
        targets = [Path(a) for a in args]
    else:
        targets = [REPO_ROOT / rel for rel in ENFORCED]
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            files.append(target)
        else:
            raise SystemExit(f"not a python file or directory: {target}")
    return files


def _check_node(node, path: Path, problems: list[str], owner: str = "") -> None:
    """Recursively require docstrings on public defs/classes under ``node``."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            kind = "class" if isinstance(child, ast.ClassDef) else "function"
            qualname = f"{owner}{child.name}"
            if _is_public(child.name):
                if ast.get_docstring(child) is None:
                    problems.append(
                        f"{path}:{child.lineno}: missing docstring on "
                        f"public {kind} '{qualname}'"
                    )
                if isinstance(child, ast.ClassDef):
                    _check_node(child, path, problems, owner=f"{qualname}.")
            # private defs: skipped, including their bodies


def check_file(path: Path) -> list[str]:
    """Return the list of docstring problems in one file."""
    problems: list[str] = []
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: missing module docstring")
    _check_node(tree, path, problems)
    return problems


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    files = _iter_enforced_files(args)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(
            f"\n{len(problems)} missing docstring(s) across "
            f"{len(files)} enforced file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"docstrings OK: {len(files)} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
