#!/usr/bin/env python
"""Engine-seam checker: no basis/operator construction outside the engine.

The refactor that introduced :mod:`repro.core.engine` made
``DecodeEngine.operator`` the repo's only sanctioned construction site
for sensing operators and sparsifying bases -- that is what lets the
operator cache amortise construction across same-shape decodes, and
what keeps one canonical sample->solve->reshape recipe instead of the
five divergent copies the engine replaced.

The same argument applies to worker pools: :mod:`repro.core.executor`
is the only sanctioned construction site for thread/process pools --
that is what keeps every fan-out (tiles, batched decodes, sweeps)
behind one ``Executor`` protocol with deterministic result ordering,
per-task error capture and ``executor.*`` metrics, instead of ad-hoc
``concurrent.futures`` scattered through call sites.

Since the implicit-operator refactor the seam also covers **dense
materialisation**: ``.to_dense()`` / ``.to_matrix()`` turn an
``O(N log N)``, near-zero-memory implicit operator into an ``O(N^2)``
matrix, so those escape hatches are confined to the operator layer
itself, the engine's (size-guarded) dense mode, and the LP solver that
genuinely needs entries.

Since the measurement-family refactor the seam also covers **direct
``Phi`` construction**: sampling codes are drawn through a registered
:class:`~repro.core.measurement.MeasurementModel` (``draw`` consumes
the RNG in a pinned order, ``budget`` applies the exclusion clamp), so
calling ``RowSamplingMatrix(...)`` / ``RowSamplingMatrix.random(...)``
or a dense code factory (``gaussian_matrix`` /  ``bernoulli_matrix`` /
``hadamard_matrix``) outside the measurement layer forks the draw
recipe and silently breaks the bit-reproducibility contract.

This checker walks the AST of every library and example module and
fails on any *call* to a guarded constructor (``Dct2Basis``,
``Dct3Basis``, ``Haar2Basis``, ``SensingOperator``; pool constructors
``ThreadPoolExecutor``, ``ProcessPoolExecutor``, ``Pool``; ``Phi``
carriers and factories like ``RowSamplingMatrix`` or
``bernoulli_matrix`` -- including classmethod spellings such as
``RowSamplingMatrix.random(...)``) or guarded dense-materialisation
method (``to_dense``, ``to_matrix``) outside the allowed modules.  An
AST walk rather than a grep keeps class definitions, docstrings and
``repr`` strings from false-positiving.

Allowed sites:

* ``src/repro/core/engine.py`` -- the engine seam itself;
* ``src/repro/core/executor.py`` -- the pool seam itself;
* ``src/repro/core/operators.py`` and
  ``src/repro/core/solvers/basis_pursuit.py`` -- the sanctioned dense
  materialisation sites;
* ``src/repro/core/measurement.py`` and ``src/repro/core/sensing.py``
  -- the measurement layer that owns ``Phi`` construction;
* the modules that *define* a guarded class may construct it inside
  methods of that class (e.g. ``to_matrix`` round-trips);
* tests and benchmarks (they exercise the raw pieces on purpose).

Usage::

    python tools/check_engine_seam.py            # check src/ + examples/
    python tools/check_engine_seam.py PATH ...   # check specific files

Exit code 0 when clean, 1 with one ``path:line: message`` per violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

GUARDED = {"Dct2Basis", "Dct3Basis", "Haar2Basis", "SensingOperator"}
"""Constructor names that may only be called inside the engine."""

ALLOWED = {
    "src/repro/core/engine.py",
}
"""Modules allowed to call any guarded constructor."""

POOL_GUARDED = {"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"}
"""Pool constructors that may only be called inside the executor seam."""

POOL_ALLOWED = {
    "src/repro/core/executor.py",
}
"""Modules allowed to construct worker pools directly."""

DENSE_GUARDED = {"to_dense", "to_matrix"}
"""Dense-materialisation escape hatches (``O(N^2)`` memory).

The implicit-operator refactor made matrix-free ``matvec``/``rmatvec``
the only sanctioned way to apply ``A`` in library code; materialising
the entries defeats the ``O(N log N)`` route and its memory model, so
any new ``.to_dense()`` / ``.to_matrix()`` call site must be argued
into :data:`DENSE_ALLOWED` explicitly.
"""

DENSE_ALLOWED = {
    "src/repro/core/operators.py",  # defines the escape hatch
    "src/repro/core/engine.py",  # dense operator mode (size-guarded)
    "src/repro/core/solvers/basis_pursuit.py",  # the LP needs entries
}
"""Modules allowed to materialise dense operator/basis matrices."""

PHI_GUARDED = {
    "RowSamplingMatrix",
    "DenseCodeMatrix",
    "BlockSamplingMatrix",
    "gaussian_matrix",
    "bernoulli_matrix",
    "hadamard_matrix",
}
"""``Phi`` carriers/factories that may only be called in the measurement
layer.

Library code draws codes through
``get_measurement(name).draw(...)`` (or receives a carrier and
dispatches via ``resolve_measurement_for``); constructing ``Phi``
directly forks the draw recipe the bit-reproducibility contract pins.
Both ``RowSamplingMatrix(...)`` and attribute spellings like
``RowSamplingMatrix.random(...)`` are caught.
"""

PHI_ALLOWED = {
    "src/repro/core/measurement.py",  # the measurement families
    "src/repro/core/sensing.py",  # the raw encoders they wrap
}
"""Modules allowed to construct measurement codes directly."""

SCANNED = ["src/repro", "examples"]
"""Paths (relative to the repo root) held to the seam."""


def _defined_classes(tree: ast.Module, guarded: set[str]) -> set[str]:
    """Guarded classes defined in this module (their home may self-construct)."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef) and node.name in guarded
    }


def check_file(path: Path) -> list[str]:
    """Return ``path:line: message`` strings for seam violations in a file."""
    try:
        rel = path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:  # outside the repo (explicit CLI argument)
        rel = path.as_posix()
    tree = ast.parse(path.read_text(), filename=str(path))
    engine_guarded = set() if rel in ALLOWED else GUARDED
    pool_guarded = set() if rel in POOL_ALLOWED else POOL_GUARDED
    dense_guarded = set() if rel in DENSE_ALLOWED else DENSE_GUARDED
    phi_guarded = set() if rel in PHI_ALLOWED else PHI_GUARDED
    home_classes = _defined_classes(
        tree, engine_guarded | pool_guarded | phi_guarded
    )
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        owner = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            if isinstance(func.value, ast.Name):
                owner = func.value.id
        if (
            isinstance(func, ast.Attribute)
            and name in dense_guarded
        ):
            problems.append(
                f"{rel}:{node.lineno}: .{name}() materialises a dense "
                "matrix outside the sanctioned sites -- use the "
                "operator's matvec/rmatvec (matrix-free) instead"
            )
            continue
        # Classmethod spellings (RowSamplingMatrix.random(...)) carry
        # the guarded name as the attribute's *owner*, not the callee.
        if owner in phi_guarded and owner not in home_classes:
            problems.append(
                f"{rel}:{node.lineno}: {owner}.{name}(...) constructs a "
                "measurement code outside repro.core.measurement -- "
                "route through get_measurement(name).draw() instead"
            )
            continue
        if name in home_classes:
            continue
        if name in engine_guarded:
            problems.append(
                f"{rel}:{node.lineno}: {name}(...) constructed outside "
                "repro.core.engine -- route through "
                "get_engine().operator()/basis_for() instead"
            )
        elif name in pool_guarded:
            problems.append(
                f"{rel}:{node.lineno}: {name}(...) constructed outside "
                "repro.core.executor -- route through "
                "resolve_executor()/ThreadExecutor/ProcessExecutor instead"
            )
        elif name in phi_guarded:
            problems.append(
                f"{rel}:{node.lineno}: {name}(...) constructs a "
                "measurement code outside repro.core.measurement -- "
                "route through get_measurement(name).draw() instead"
            )
    return problems


def main(argv: list[str]) -> int:
    """CLI entry point; returns the exit code."""
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = []
        for root in SCANNED:
            files.extend(sorted((REPO_ROOT / root).rglob("*.py")))
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} engine-seam violation(s)")
        return 1
    print(f"engine seam intact across {len(files)} files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
